"""The compositional design criterion — implements Definition 12 and Theorem 1.

This is the paper's primary contribution: instead of model-checking weak
endochrony of a composition (exponential in the state space), check

1. that every component is *compilable and hierarchic* — hence endochronous
   (Property 2), hence weakly endochronous;
2. that the composition is *well-clocked and acyclic* — which makes it
   non-blocking;

and conclude (Theorem 1) that the composition is weakly endochronous and that
the components are isochronous: running them asynchronously yields the same
flows as the synchronous product.

:func:`compose_and_check` performs the whole pipeline on a list of component
processes and returns a :class:`CompositionVerdict` carrying the per-component
and global diagnoses, including the clock constraints between components that
the code generator of Section 5 turns into synchronization points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.api.results import Cost, Diagnostic, Verdict, stopwatch
from repro.clocks.expressions import format_clock_expression
from repro.lang.ast import ClockExpressionSyntax, ClockFalse, ClockOf, ClockTrue
from repro.lang.normalize import NormalizedProcess
from repro.properties.compilable import ProcessAnalysis

#: artifact-store object kinds of the criterion's two persisted stages
DIAGNOSIS_KIND = "diagnosis"
OBLIGATIONS_KIND = "obligations"


@dataclass
class ComponentDiagnosis:
    """Per-component verdicts of the weakly hierarchic criterion.

    This is the paper's *per-component obligation* — endochrony via
    Property 2 — and, being α-invariant booleans, it is a persistent
    artifact: keyed by the component's content digest, it survives
    composition, edits of *other* components, and session restarts.
    """

    name: str
    compilable: bool
    hierarchic: bool
    roots: int

    def endochronous(self) -> bool:
        """Property 2: compilable and hierarchic implies endochronous."""
        return self.compilable and self.hierarchic

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "compilable": self.compilable,
            "hierarchic": self.hierarchic,
            "roots": self.roots,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ComponentDiagnosis":
        return cls(
            name=str(payload["name"]),
            compilable=bool(payload["compilable"]),
            hierarchic=bool(payload["hierarchic"]),
            roots=int(payload["roots"]),
        )

    def __str__(self) -> str:
        verdict = "endochronous" if self.endochronous() else "NOT endochronous"
        return (
            f"{self.name}: {verdict} "
            f"(compilable={self.compilable}, roots={self.roots})"
        )


@dataclass(frozen=True)
class CompositionObligations:
    """The composition-level clauses of Definition 12, as one artifact.

    Everything the criterion needs from the *composed* process:
    well-clockedness, acyclicity, the root count, the shared interface
    signals and the reported clock constraints (the isochrony obligations
    the code generator turns into rendez-vous points).  Keyed by the design
    digest — editing any component moves the key, so exactly this artifact
    (and nothing per-component) is recomputed after an edit.
    """

    well_clocked: bool
    acyclic: bool
    roots: int
    shared_signals: Tuple[str, ...]
    reported_constraints: Tuple[str, ...]

    def to_payload(self) -> Dict[str, object]:
        return {
            "well_clocked": self.well_clocked,
            "acyclic": self.acyclic,
            "roots": self.roots,
            "shared_signals": list(self.shared_signals),
            "reported_constraints": list(self.reported_constraints),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CompositionObligations":
        return cls(
            well_clocked=bool(payload["well_clocked"]),
            acyclic=bool(payload["acyclic"]),
            roots=int(payload["roots"]),
            shared_signals=tuple(payload["shared_signals"]),
            reported_constraints=tuple(payload["reported_constraints"]),
        )


@dataclass
class CompositionVerdict:
    """The outcome of the static compositional criterion."""

    components: List[ComponentDiagnosis] = field(default_factory=list)
    composition_name: str = ""
    composition_well_clocked: bool = False
    composition_acyclic: bool = False
    composition_roots: int = 0
    shared_signals: List[str] = field(default_factory=list)
    reported_constraints: List[str] = field(default_factory=list)
    analysis: Optional[ProcessAnalysis] = None
    #: lazy supplier of the composition analysis, set when the verdict was
    #: assembled from persisted artifacts (no analysis was built); consumers
    #: that need the live object call :meth:`composition_analysis`
    analysis_provider: Optional[Callable[[], ProcessAnalysis]] = field(
        default=None, repr=False, compare=False
    )

    def composition_analysis(self) -> Optional[ProcessAnalysis]:
        """The composition's :class:`ProcessAnalysis`, computed on demand.

        A verdict assembled from the artifact graph carries no live
        analysis — the whole point of the warm path; consumers that need
        one (the Section 5.2 controller synthesis mines its clock algebra)
        get it here, paid only when actually asked for.
        """
        if self.analysis is None and self.analysis_provider is not None:
            self.analysis = self.analysis_provider()
        return self.analysis

    def components_endochronous(self) -> bool:
        return all(component.endochronous() for component in self.components)

    def weakly_hierarchic(self) -> bool:
        """Definition 12."""
        return (
            self.components_endochronous()
            and self.composition_well_clocked
            and self.composition_acyclic
        )

    def weakly_endochronous(self) -> bool:
        """Theorem 1 (1): a weakly hierarchic process is weakly endochronous."""
        return self.weakly_hierarchic()

    def isochronous(self) -> bool:
        """Theorem 1 (2): the components of a weakly hierarchic composition are isochronous."""
        return self.weakly_hierarchic()

    def endochronous_composition(self) -> bool:
        """Whether the composition itself is single-rooted (not required by the criterion)."""
        return self.composition_roots == 1

    def __str__(self) -> str:
        lines = [f"compositional criterion for {self.composition_name}:"]
        lines.extend(f"  {component}" for component in self.components)
        lines.append(
            f"  composition: well-clocked={self.composition_well_clocked}, "
            f"acyclic={self.composition_acyclic}, roots={self.composition_roots}"
        )
        if self.reported_constraints:
            lines.append("  reported clock constraints:")
            lines.extend(f"    {constraint}" for constraint in self.reported_constraints)
        verdict = (
            "weakly hierarchic: weakly endochronous and isochronous (Theorem 1)"
            if self.weakly_hierarchic()
            else "criterion NOT satisfied"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _shared_signals(components: Sequence[NormalizedProcess]) -> List[str]:
    """Signals that appear on the interface of at least two components."""
    counts: Dict[str, int] = {}
    for component in components:
        for name in set(component.interface_signals()):
            counts[name] = counts.get(name, 0) + 1
    return sorted(name for name, count in counts.items() if count > 1)


def _interface_clock_constraints(
    analysis: ProcessAnalysis, components: Sequence[NormalizedProcess], shared: Iterable[str]
) -> List[str]:
    """Clock equalities between the components implied by the composition.

    These are the constraints Polychrony *reports* (Section 5.1) — e.g.
    ``[¬a] = [b]`` for the producer/consumer pair — and that the synthesized
    controller of Section 5.2 turns into rendez-vous points.
    """
    candidate_clocks: List[ClockExpressionSyntax] = []
    boolean = set(analysis.process.boolean_signals())
    inputs_of_components: Set[str] = set()
    for component in components:
        inputs_of_components.update(component.inputs)
    for name in sorted(inputs_of_components | set(shared)):
        if name not in set(analysis.process.all_signals()):
            continue
        candidate_clocks.append(ClockOf(name))
        if name in boolean:
            candidate_clocks.append(ClockTrue(name))
            candidate_clocks.append(ClockFalse(name))
    constraints: List[str] = []
    for left, right in analysis.algebra.implied_equalities(candidate_clocks):
        left_names = left.free_signals()
        right_names = right.free_signals()
        if left_names == right_names:
            continue  # trivially about the same signal
        constraints.append(
            f"{format_clock_expression(left)} = {format_clock_expression(right)}"
        )
    return constraints


def _diagnose_component(analysis: ProcessAnalysis, name: str) -> ComponentDiagnosis:
    return ComponentDiagnosis(
        name=name,
        compilable=analysis.is_compilable(),
        hierarchic=analysis.is_hierarchic(),
        roots=analysis.root_count(),
    )


def component_diagnosis(context, component: NormalizedProcess) -> ComponentDiagnosis:
    """The per-component obligation of Definition 12, as an artifact node.

    Keyed by the component's content digest and persisted (the verdicts are
    α-invariant booleans): a warm store answers without building the
    component's :class:`ProcessAnalysis` at all, and an edit of one
    component leaves every other component's diagnosis addressed and warm —
    the paper's compositionality theorem as a cache policy.
    """
    return context.graph.resolve(
        "diagnosis",
        context.digest_of(component),
        compute=lambda: _diagnose_component(context.analysis(component), component.name),
        kind=DIAGNOSIS_KIND,
        encode=ComponentDiagnosis.to_payload,
        decode=ComponentDiagnosis.from_payload,
        keep=(component,),
    )


def composition_obligations(
    context,
    components: Sequence[NormalizedProcess],
    composition: NormalizedProcess,
) -> CompositionObligations:
    """The composition-level clauses of Definition 12, as an artifact node.

    Keyed by the *design* digest (the digest of the component set) plus the
    composition's own content digest: an edit of any component moves the
    key and this — only this — recomputes among the composition-level
    artifacts, together with the edited component's own stages; and a
    custom composition (one that differs from the plain compose of the
    components, e.g. with extra constraints) gets its own node instead of
    adopting the default composition's answers.
    """
    def compute() -> CompositionObligations:
        analysis = context.analysis(composition)
        shared = _shared_signals(components)
        return CompositionObligations(
            well_clocked=analysis.is_well_clocked(),
            acyclic=analysis.is_acyclic(),
            roots=analysis.root_count(),
            shared_signals=tuple(shared),
            reported_constraints=tuple(
                _interface_clock_constraints(analysis, components, shared)
            ),
        )

    composition_identity = context.digest_of(composition)
    return context.graph.resolve(
        "obligations",
        context.design_digest(components),
        composition_identity,
        compute=compute,
        kind=f"{OBLIGATIONS_KIND}-{composition_identity[:16]}",
        encode=CompositionObligations.to_payload,
        decode=CompositionObligations.from_payload,
        keep=tuple(components) + (composition,),
    )


def check_weakly_hierarchic(
    components: Sequence[NormalizedProcess],
    composition: Optional[NormalizedProcess] = None,
    composition_name: Optional[str] = None,
    context=None,
) -> CompositionVerdict:
    """Definition 12 over explicit components and (optionally) their composition.

    ``context`` may be a :class:`repro.api.session.AnalysisContext` (or any
    object with an ``analysis(process)`` method): the per-component
    diagnoses and the composition-level obligations are then artifact
    nodes of the context's graph — reused from its memo or its attached
    store instead of being rebuilt — so repeated checks over the same
    components share all clock calculus work, and a check after a
    one-component edit recomputes only the edited component's diagnosis
    plus the obligations.  Without a context (or with a bare
    ``analysis``-only object) everything is computed flat, as before.
    """
    if not components:
        raise ValueError("the criterion needs at least one component")
    if composition is None:
        composition = reduce(lambda left, right: left.compose(right), components)
    if composition_name:
        composition = NormalizedProcess(
            name=composition_name,
            inputs=composition.inputs,
            outputs=composition.outputs,
            locals=composition.locals,
            equations=composition.equations,
            types=dict(composition.types),
        )

    verdict = CompositionVerdict(composition_name=composition.name)
    graph = getattr(context, "graph", None)
    if graph is not None and hasattr(context, "digest_of"):
        for component in components:
            verdict.components.append(component_diagnosis(context, component))
        obligations = composition_obligations(context, components, composition)
        verdict.composition_well_clocked = obligations.well_clocked
        verdict.composition_acyclic = obligations.acyclic
        verdict.composition_roots = obligations.roots
        verdict.shared_signals = list(obligations.shared_signals)
        verdict.reported_constraints = list(obligations.reported_constraints)
        # the analysis is supplied lazily: a warm-path verdict built no
        # ProcessAnalysis, and most consumers never need one
        verdict.analysis_provider = lambda: context.analysis(composition)
        return verdict

    analysis_of = context.analysis if context is not None else ProcessAnalysis
    for component in components:
        verdict.components.append(
            _diagnose_component(analysis_of(component), component.name)
        )
    composition_analysis = analysis_of(composition)
    verdict.analysis = composition_analysis
    verdict.composition_well_clocked = composition_analysis.is_well_clocked()
    verdict.composition_acyclic = composition_analysis.is_acyclic()
    verdict.composition_roots = composition_analysis.root_count()
    verdict.shared_signals = _shared_signals(components)
    verdict.reported_constraints = _interface_clock_constraints(
        composition_analysis, components, verdict.shared_signals
    )
    return verdict


def compose_and_check(
    components: Sequence[NormalizedProcess], name: Optional[str] = None, context=None
) -> CompositionVerdict:
    """Compose the components by name-matching and run the static criterion.

    With a ``context`` (an :class:`~repro.api.session.AnalysisContext`,
    optionally backed by an artifact store) the verdict is assembled from
    the graph's per-component diagnoses and composition obligations — on a
    warm store, without building a single analysis.
    """
    return check_weakly_hierarchic(components, composition_name=name, context=context)


def verify_weakly_hierarchic(
    components: Sequence[NormalizedProcess],
    composition: Optional[NormalizedProcess] = None,
    composition_name: Optional[str] = None,
    context=None,
) -> Verdict:
    """Definition 12 / Theorem 1 as a :class:`~repro.api.results.Verdict`.

    The underlying :class:`CompositionVerdict` (with its per-component
    diagnoses and reported clock constraints) is kept in ``report``.
    """
    with stopwatch() as elapsed:
        report = check_weakly_hierarchic(components, composition, composition_name, context)
    diagnostics = [
        Diagnostic(
            f"component {component.name} endochronous (Property 2)",
            component.endochronous(),
            f"compilable={component.compilable}, roots={component.roots}",
        )
        for component in report.components
    ]
    diagnostics.append(
        Diagnostic("composition well-clocked (Definition 7)", report.composition_well_clocked)
    )
    diagnostics.append(
        Diagnostic("composition acyclic (Definition 8)", report.composition_acyclic)
    )
    if report.reported_constraints:
        diagnostics.append(
            Diagnostic(
                "reported clock constraints",
                True,
                "; ".join(report.reported_constraints),
                witness=tuple(report.reported_constraints),
            )
        )
    return Verdict(
        prop="weakly-hierarchic",
        subject=report.composition_name,
        holds=report.weakly_hierarchic(),
        method="static",
        diagnostics=diagnostics,
        cost=Cost(seconds=elapsed[0], components=len(report.components)),
        report=report,
    )
