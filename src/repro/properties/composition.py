"""The compositional design criterion — implements Definition 12 and Theorem 1.

This is the paper's primary contribution: instead of model-checking weak
endochrony of a composition (exponential in the state space), check

1. that every component is *compilable and hierarchic* — hence endochronous
   (Property 2), hence weakly endochronous;
2. that the composition is *well-clocked and acyclic* — which makes it
   non-blocking;

and conclude (Theorem 1) that the composition is weakly endochronous and that
the components are isochronous: running them asynchronously yields the same
flows as the synchronous product.

:func:`compose_and_check` performs the whole pipeline on a list of component
processes and returns a :class:`CompositionVerdict` carrying the per-component
and global diagnoses, including the clock constraints between components that
the code generator of Section 5 turns into synchronization points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.api.results import Cost, Diagnostic, Verdict, stopwatch
from repro.clocks.expressions import format_clock_expression
from repro.lang.ast import ClockExpressionSyntax, ClockFalse, ClockOf, ClockTrue
from repro.lang.normalize import NormalizedProcess
from repro.properties.compilable import ProcessAnalysis


@dataclass
class ComponentDiagnosis:
    """Per-component verdicts of the weakly hierarchic criterion."""

    name: str
    compilable: bool
    hierarchic: bool
    roots: int

    def endochronous(self) -> bool:
        """Property 2: compilable and hierarchic implies endochronous."""
        return self.compilable and self.hierarchic

    def __str__(self) -> str:
        verdict = "endochronous" if self.endochronous() else "NOT endochronous"
        return (
            f"{self.name}: {verdict} "
            f"(compilable={self.compilable}, roots={self.roots})"
        )


@dataclass
class CompositionVerdict:
    """The outcome of the static compositional criterion."""

    components: List[ComponentDiagnosis] = field(default_factory=list)
    composition_name: str = ""
    composition_well_clocked: bool = False
    composition_acyclic: bool = False
    composition_roots: int = 0
    shared_signals: List[str] = field(default_factory=list)
    reported_constraints: List[str] = field(default_factory=list)
    analysis: Optional[ProcessAnalysis] = None

    def components_endochronous(self) -> bool:
        return all(component.endochronous() for component in self.components)

    def weakly_hierarchic(self) -> bool:
        """Definition 12."""
        return (
            self.components_endochronous()
            and self.composition_well_clocked
            and self.composition_acyclic
        )

    def weakly_endochronous(self) -> bool:
        """Theorem 1 (1): a weakly hierarchic process is weakly endochronous."""
        return self.weakly_hierarchic()

    def isochronous(self) -> bool:
        """Theorem 1 (2): the components of a weakly hierarchic composition are isochronous."""
        return self.weakly_hierarchic()

    def endochronous_composition(self) -> bool:
        """Whether the composition itself is single-rooted (not required by the criterion)."""
        return self.composition_roots == 1

    def __str__(self) -> str:
        lines = [f"compositional criterion for {self.composition_name}:"]
        lines.extend(f"  {component}" for component in self.components)
        lines.append(
            f"  composition: well-clocked={self.composition_well_clocked}, "
            f"acyclic={self.composition_acyclic}, roots={self.composition_roots}"
        )
        if self.reported_constraints:
            lines.append("  reported clock constraints:")
            lines.extend(f"    {constraint}" for constraint in self.reported_constraints)
        verdict = (
            "weakly hierarchic: weakly endochronous and isochronous (Theorem 1)"
            if self.weakly_hierarchic()
            else "criterion NOT satisfied"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _shared_signals(components: Sequence[NormalizedProcess]) -> List[str]:
    """Signals that appear on the interface of at least two components."""
    counts: Dict[str, int] = {}
    for component in components:
        for name in set(component.interface_signals()):
            counts[name] = counts.get(name, 0) + 1
    return sorted(name for name, count in counts.items() if count > 1)


def _interface_clock_constraints(
    analysis: ProcessAnalysis, components: Sequence[NormalizedProcess], shared: Iterable[str]
) -> List[str]:
    """Clock equalities between the components implied by the composition.

    These are the constraints Polychrony *reports* (Section 5.1) — e.g.
    ``[¬a] = [b]`` for the producer/consumer pair — and that the synthesized
    controller of Section 5.2 turns into rendez-vous points.
    """
    candidate_clocks: List[ClockExpressionSyntax] = []
    boolean = set(analysis.process.boolean_signals())
    inputs_of_components: Set[str] = set()
    for component in components:
        inputs_of_components.update(component.inputs)
    for name in sorted(inputs_of_components | set(shared)):
        if name not in set(analysis.process.all_signals()):
            continue
        candidate_clocks.append(ClockOf(name))
        if name in boolean:
            candidate_clocks.append(ClockTrue(name))
            candidate_clocks.append(ClockFalse(name))
    constraints: List[str] = []
    for left, right in analysis.algebra.implied_equalities(candidate_clocks):
        left_names = left.free_signals()
        right_names = right.free_signals()
        if left_names == right_names:
            continue  # trivially about the same signal
        constraints.append(
            f"{format_clock_expression(left)} = {format_clock_expression(right)}"
        )
    return constraints


def check_weakly_hierarchic(
    components: Sequence[NormalizedProcess],
    composition: Optional[NormalizedProcess] = None,
    composition_name: Optional[str] = None,
    context=None,
) -> CompositionVerdict:
    """Definition 12 over explicit components and (optionally) their composition.

    ``context`` may be a :class:`repro.api.session.AnalysisContext` (or any
    object with an ``analysis(process)`` method): per-component and
    composition analyses are then fetched from its memo instead of being
    rebuilt, so repeated checks over the same components share all clock
    calculus work and one BDD manager.
    """
    if not components:
        raise ValueError("the criterion needs at least one component")
    if composition is None:
        composition = reduce(lambda left, right: left.compose(right), components)
    if composition_name:
        composition = NormalizedProcess(
            name=composition_name,
            inputs=composition.inputs,
            outputs=composition.outputs,
            locals=composition.locals,
            equations=composition.equations,
            types=dict(composition.types),
        )
    analysis_of = context.analysis if context is not None else ProcessAnalysis

    verdict = CompositionVerdict(composition_name=composition.name)
    for component in components:
        analysis = analysis_of(component)
        verdict.components.append(
            ComponentDiagnosis(
                name=component.name,
                compilable=analysis.is_compilable(),
                hierarchic=analysis.is_hierarchic(),
                roots=analysis.root_count(),
            )
        )

    composition_analysis = analysis_of(composition)
    verdict.analysis = composition_analysis
    verdict.composition_well_clocked = composition_analysis.is_well_clocked()
    verdict.composition_acyclic = composition_analysis.is_acyclic()
    verdict.composition_roots = composition_analysis.root_count()
    verdict.shared_signals = _shared_signals(components)
    verdict.reported_constraints = _interface_clock_constraints(
        composition_analysis, components, verdict.shared_signals
    )
    return verdict


def compose_and_check(
    components: Sequence[NormalizedProcess], name: Optional[str] = None
) -> CompositionVerdict:
    """Compose the components by name-matching and run the static criterion."""
    return check_weakly_hierarchic(components, composition_name=name)


def verify_weakly_hierarchic(
    components: Sequence[NormalizedProcess],
    composition: Optional[NormalizedProcess] = None,
    composition_name: Optional[str] = None,
    context=None,
) -> Verdict:
    """Definition 12 / Theorem 1 as a :class:`~repro.api.results.Verdict`.

    The underlying :class:`CompositionVerdict` (with its per-component
    diagnoses and reported clock constraints) is kept in ``report``.
    """
    with stopwatch() as elapsed:
        report = check_weakly_hierarchic(components, composition, composition_name, context)
    diagnostics = [
        Diagnostic(
            f"component {component.name} endochronous (Property 2)",
            component.endochronous(),
            f"compilable={component.compilable}, roots={component.roots}",
        )
        for component in report.components
    ]
    diagnostics.append(
        Diagnostic("composition well-clocked (Definition 7)", report.composition_well_clocked)
    )
    diagnostics.append(
        Diagnostic("composition acyclic (Definition 8)", report.composition_acyclic)
    )
    if report.reported_constraints:
        diagnostics.append(
            Diagnostic(
                "reported clock constraints",
                True,
                "; ".join(report.reported_constraints),
                witness=tuple(report.reported_constraints),
            )
        )
    return Verdict(
        prop="weakly-hierarchic",
        subject=report.composition_name,
        holds=report.weakly_hierarchic(),
        method="static",
        diagnostics=diagnostics,
        cost=Cost(seconds=elapsed[0], components=len(report.components)),
        report=report,
    )
