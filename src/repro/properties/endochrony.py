"""Endochrony — implements Definition 1 (traces) and Property 2 (static).

Definition 1: a process is endochronous when flow-equivalent inputs always
lead to clock-equivalent behaviors — the timing of the whole process is
reconstructed from the flows of its inputs, independently of network latency.

Property 2 gives the static criterion used by Polychrony and by this
library: a *compilable* and *hierarchic* process (single-rooted hierarchy) is
endochronous.  Both views are implemented: :func:`is_endochronous` uses the
static criterion, :func:`check_endochrony_on_traces` validates Definition 1
directly on bounded traces (used in tests to cross-check the criterion on the
paper's examples).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.api.results import Cost, Diagnostic, Verdict, stopwatch
from repro.lang.normalize import NormalizedProcess
from repro.mocc.behaviors import Behavior, clock_equivalent, flow_equivalent
from repro.properties.compilable import ProcessAnalysis
from repro.semantics.denotational import enumerate_behaviors


def verify_endochrony(
    process: NormalizedProcess, analysis: Optional[ProcessAnalysis] = None
) -> Verdict:
    """Property 2 as a :class:`~repro.api.results.Verdict`: compilable ∧ hierarchic."""
    analysis = analysis or ProcessAnalysis(process)
    with stopwatch() as elapsed:
        compilable = analysis.is_compilable()
        roots = analysis.root_count()
    return Verdict(
        prop="endochrony",
        subject=process.name,
        holds=compilable and roots == 1,
        method="static",
        diagnostics=[
            Diagnostic("compilable (Definition 10)", compilable),
            Diagnostic("hierarchic (Definition 11)", roots == 1, f"{roots} roots"),
        ],
        cost=Cost(seconds=elapsed[0]),
        report=analysis,
    )


def is_hierarchic(process: NormalizedProcess, analysis: Optional[ProcessAnalysis] = None) -> bool:
    """Definition 11: the clock hierarchy of the process has a unique root.

    .. deprecated:: use ``Design.verify("hierarchic")`` or
       :meth:`ProcessAnalysis.is_hierarchic` — the Verdict reports the root
       count alongside the boolean.
    """
    warnings.warn(
        "is_hierarchic() is deprecated; use Design.verify('hierarchic') or "
        "ProcessAnalysis.is_hierarchic() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    analysis = analysis or ProcessAnalysis(process)
    return analysis.is_hierarchic()


def is_endochronous(process: NormalizedProcess, analysis: Optional[ProcessAnalysis] = None) -> bool:
    """Property 2 as a bare boolean (shim over :func:`verify_endochrony`).

    .. deprecated:: use ``Design.verify("endochrony")`` or
       :func:`verify_endochrony` — the Verdict carries the same boolean plus
       the Property 2 diagnostics.
    """
    warnings.warn(
        "is_endochronous() is deprecated; use Design.verify('endochrony') or "
        "verify_endochrony() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return verify_endochrony(process, analysis).holds


@dataclass
class EndochronyTraceReport:
    """Outcome of checking Definition 1 on bounded traces."""

    process_name: str
    holds: bool
    behaviors_compared: int = 0
    counterexample: Optional[Tuple[Behavior, Behavior]] = None

    def __str__(self) -> str:
        status = "endochronous on the tested flows" if self.holds else "NOT endochronous"
        return f"{self.process_name}: {status} ({self.behaviors_compared} behavior pairs compared)"


def check_endochrony_on_traces(
    process: NormalizedProcess,
    input_flows: Mapping[str, Sequence[object]],
    max_instants: int = 8,
    signals: Optional[Iterable[str]] = None,
) -> EndochronyTraceReport:
    """Definition 1 on bounded traces.

    All behaviors that consume the given input flows are enumerated; since
    they all carry flow-equivalent inputs (the same flows), endochrony
    requires them to be pairwise clock equivalent once projected on the
    observable signals.
    """
    observable = tuple(signals) if signals is not None else process.interface_signals()
    behaviors = enumerate_behaviors(
        process, input_flows, max_instants=max_instants, signals=observable
    )
    compared = 0
    for left, right in itertools.combinations(behaviors.behaviors(), 2):
        compared += 1
        if flow_equivalent(
            left.restrict(process.inputs), right.restrict(process.inputs)
        ) and not clock_equivalent(left, right):
            return EndochronyTraceReport(
                process_name=process.name,
                holds=False,
                behaviors_compared=compared,
                counterexample=(left, right),
            )
    return EndochronyTraceReport(
        process_name=process.name, holds=True, behaviors_compared=compared
    )
