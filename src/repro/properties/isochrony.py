"""Isochrony — implements Definition 3 of the paper, on bounded traces.

Two processes are isochronous when their synchronous composition and their
asynchronous composition have the same behaviors up to flow equivalence:
nothing is lost (and nothing is invented) by letting the two components run
on unsynchronized clocks and exchange values through FIFOs.  Theorem 1 (2)
obtains this for free for weakly hierarchic compositions; this module is the
bounded-trace oracle the criterion is cross-checked against.

The check below enumerates the bounded behaviors of the two components over
given input flows, builds both compositions with the operators of
:mod:`repro.mocc.processes`, and compares the sets of flow-equivalence
classes of the shared and visible signals.  With ``lazy=True`` the
asynchronous side is *not* materialized: candidate gluings are streamed one
by one and the comparison stops at the first asynchronous flow class missing
synchronously — the denotational analogue of the on-the-fly engine of
:mod:`repro.mc.onthefly`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.api.results import Cost, Diagnostic, Verdict, stopwatch
from repro.lang.normalize import NormalizedProcess
from repro.mocc.behaviors import Behavior
from repro.mocc.processes import (
    DenotationalProcess,
    asynchronous_composition,
    iter_asynchronous_gluings,
    synchronous_composition,
)
from repro.semantics.denotational import enumerate_behaviors


@dataclass
class IsochronyReport:
    """Result of the bounded isochrony comparison.

    ``complete`` is ``False`` when the comparison stopped at the first
    missing class (the lazy path): ``asynchronous_classes`` then counts the
    classes streamed before the counterexample, not the full set.
    """

    left_name: str
    right_name: str
    holds: bool
    synchronous_classes: int = 0
    asynchronous_classes: int = 0
    missing_in_synchronous: List[Tuple] = field(default_factory=list)
    complete: bool = True

    def __str__(self) -> str:
        verdict = "isochronous" if self.holds else "NOT isochronous"
        return (
            f"{self.left_name} || {self.right_name}: {verdict} "
            f"(sync {self.synchronous_classes} flow classes, "
            f"async {self.asynchronous_classes} flow classes)"
        )


def _observable_signals(
    left: NormalizedProcess, right: NormalizedProcess, signals: Optional[Iterable[str]]
) -> Tuple[str, ...]:
    if signals is not None:
        return tuple(sorted(signals))
    visible = set(left.interface_signals()) | set(right.interface_signals())
    return tuple(sorted(visible))


def _flow_class_key(behavior: Behavior) -> Tuple:
    """The canonical flow-class key of one behavior (as in ``flow_classes``)."""
    return tuple(sorted((name, values) for name, values in behavior.flows().items()))


def check_isochrony(
    left: NormalizedProcess,
    right: NormalizedProcess,
    input_flows: Mapping[str, Sequence[object]],
    max_instants: int = 8,
    signals: Optional[Iterable[str]] = None,
    lazy: bool = False,
) -> IsochronyReport:
    """Definition 3 on bounded traces: ``p | q ≈ p ‖ q``.

    ``input_flows`` gives the untimed flows of the signals that are inputs of
    the composition (inputs of either component not produced by the other).
    The comparison is on flow-equivalence classes: every flow of values
    reachable asynchronously must be reachable synchronously and conversely.

    With ``lazy=True`` the asynchronous gluings are streamed and the
    comparison returns at the first class missing synchronously, so a
    violating composition never pays for the full asynchronous product.
    """
    observable = _observable_signals(left, right, signals)

    left_inputs = {
        name: values for name, values in input_flows.items() if name in left.inputs
    }
    right_inputs = {
        name: values for name, values in input_flows.items() if name in right.inputs
    }
    # Signals produced by one component and consumed by the other are *not*
    # free inputs: the producing side constrains their flow.  They are left
    # out of the per-component enumeration inputs only if produced locally.
    shared_produced_by_left = set(left.outputs) & set(right.inputs)
    shared_produced_by_right = set(right.outputs) & set(left.inputs)
    for name in shared_produced_by_left:
        right_inputs.pop(name, None)
    for name in shared_produced_by_right:
        left_inputs.pop(name, None)

    # Synchronous side: the behaviors of the composition p | q itself, i.e. the
    # executions in which the two components react on a common logical time.
    composed = left.compose(right)
    composed_inputs = {
        name: values for name, values in input_flows.items() if name in composed.inputs
    }
    synchronous = enumerate_behaviors(
        composed,
        composed_inputs,
        max_instants=max_instants,
        signals=tuple(name for name in observable if name in composed.all_signals()),
    )

    # Asynchronous side: each component is enumerated against untimed flows —
    # shared flows produced by the other side are taken from its enumeration —
    # and the results are glued by flow equivalence on the interface (p ‖ q).
    left_process = enumerate_behaviors(
        left,
        {**left_inputs},
        max_instants=max_instants,
        signals=tuple(sorted(set(left.interface_signals()) & set(observable))),
    )
    right_flows: Dict[str, Sequence[object]] = {**right_inputs}
    for name in shared_produced_by_left:
        flows_seen: Set[Tuple[object, ...]] = set()
        for behavior in left_process:
            if name in behavior.domain():
                flows_seen.add(behavior[name].values)
        if flows_seen:
            # Use the longest produced flow as the consumer's available flow.
            right_flows[name] = max(flows_seen, key=len)
    right_process = enumerate_behaviors(
        right,
        right_flows,
        max_instants=max_instants,
        signals=tuple(sorted(set(right.interface_signals()) & set(observable))),
    )
    synchronous_classes = synchronous.restrict(observable).flow_classes()

    if lazy:
        seen: Set[Tuple] = set()
        for gluing in iter_asynchronous_gluings(left_process, right_process):
            key = _flow_class_key(gluing.restrict(observable))
            if key in seen:
                continue
            seen.add(key)
            if key not in synchronous_classes:
                return IsochronyReport(
                    left_name=left.name,
                    right_name=right.name,
                    holds=False,
                    synchronous_classes=len(synchronous_classes),
                    asynchronous_classes=len(seen),
                    missing_in_synchronous=[key],
                    complete=False,
                )
        return IsochronyReport(
            left_name=left.name,
            right_name=right.name,
            holds=bool(synchronous_classes),
            synchronous_classes=len(synchronous_classes),
            asynchronous_classes=len(seen),
        )

    asynchronous = asynchronous_composition(left_process, right_process)
    asynchronous_classes = asynchronous.restrict(observable).flow_classes()

    missing = sorted(asynchronous_classes - synchronous_classes)
    holds = not missing and bool(synchronous_classes)
    return IsochronyReport(
        left_name=left.name,
        right_name=right.name,
        holds=holds,
        synchronous_classes=len(synchronous_classes),
        asynchronous_classes=len(asynchronous_classes),
        missing_in_synchronous=missing,
    )


def verify_isochrony(
    left: NormalizedProcess,
    right: NormalizedProcess,
    input_flows: Mapping[str, Sequence[object]],
    max_instants: int = 8,
    signals: Optional[Iterable[str]] = None,
    lazy: bool = False,
) -> Verdict:
    """Definition 3 on bounded traces as a :class:`~repro.api.results.Verdict`."""
    with stopwatch() as elapsed:
        report = check_isochrony(left, right, input_flows, max_instants, signals, lazy=lazy)
    witness = report.missing_in_synchronous[0] if report.missing_in_synchronous else None
    return Verdict(
        prop="isochrony",
        subject=f"{report.left_name} || {report.right_name}",
        holds=report.holds,
        method="explicit",
        diagnostics=[
            Diagnostic(
                "async flows ⊆ sync flows (Definition 3)",
                report.holds,
                f"sync {report.synchronous_classes} / async "
                f"{report.asynchronous_classes} flow classes",
                witness=witness,
            )
        ],
        cost=Cost(seconds=elapsed[0], components=2),
        report=report,
    )
