"""Non-blocking processes (Definition 4).

A process is non-blocking when, from every reachable state, it admits at
least one (possibly stuttering) reaction.  In the reaction LTS of the boolean
abstraction this is simply the absence of deadlock states; the silent
reaction is admissible whenever the process puts no lower bound on activity,
so blocking only arises from contradictory timing relations.
"""

from __future__ import annotations

from typing import Optional

from repro.api.results import Cost, Verdict, diagnostics_from_invariants, stopwatch
from repro.clocks.hierarchy import ClockHierarchy
from repro.lang.normalize import NormalizedProcess
from repro.mc.explicit import ExplicitStateChecker, InvariantResult
from repro.mc.transition import ReactionLTS, build_lts


def verify_non_blocking(
    process: NormalizedProcess,
    lts: Optional[ReactionLTS] = None,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
) -> Verdict:
    """Definition 4 as a :class:`~repro.api.results.Verdict` (explicit exploration)."""
    with stopwatch() as elapsed:
        if lts is None:
            lts = build_lts(process, hierarchy, max_states=max_states)
        result = ExplicitStateChecker(lts).is_non_blocking()
    return Verdict(
        prop="non-blocking",
        subject=process.name,
        holds=result.holds,
        method="explicit",
        diagnostics=diagnostics_from_invariants([result]),
        cost=Cost(
            seconds=elapsed[0],
            states=lts.state_count(),
            transitions=lts.transition_count(),
        ),
        report=result,
    )


def is_non_blocking(
    process: NormalizedProcess,
    lts: Optional[ReactionLTS] = None,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
) -> InvariantResult:
    """Definition 4, old entry point (shim over :func:`verify_non_blocking`)."""
    verdict = verify_non_blocking(process, lts, hierarchy, max_states)
    return verdict.report
