"""Non-blocking processes (Definition 4).

A process is non-blocking when, from every reachable state, it admits at
least one (possibly stuttering) reaction.  In the reaction LTS of the boolean
abstraction this is simply the absence of deadlock states; the silent
reaction is admissible whenever the process puts no lower bound on activity,
so blocking only arises from contradictory timing relations.
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.hierarchy import ClockHierarchy
from repro.lang.normalize import NormalizedProcess
from repro.mc.explicit import ExplicitStateChecker, InvariantResult
from repro.mc.transition import ReactionLTS, build_lts


def is_non_blocking(
    process: NormalizedProcess,
    lts: Optional[ReactionLTS] = None,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
) -> InvariantResult:
    """Definition 4 over the reachable states of the boolean abstraction."""
    if lts is None:
        lts = build_lts(process, hierarchy, max_states=max_states)
    return ExplicitStateChecker(lts).is_non_blocking()
