"""Non-blocking processes — implements Definition 4 of the paper.

A process is non-blocking when, from every reachable state, it admits at
least one (possibly stuttering) reaction.  In the reaction LTS of the boolean
abstraction this is simply the absence of deadlock states; the silent
reaction is admissible whenever the process puts no lower bound on activity,
so blocking only arises from contradictory timing relations.

Theorem 1 makes this check free for weakly hierarchic compositions; for the
model-checking route the check runs either on an eagerly explored
:class:`~repro.mc.transition.ReactionLTS` or — preferably — on an
:class:`~repro.mc.onthefly.OnTheFlyChecker`, which stops at the first
deadlock it reaches instead of materializing the full product first.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.api.results import Cost, Diagnostic, Verdict, diagnostics_from_invariants, stopwatch
from repro.clocks.hierarchy import ClockHierarchy
from repro.lang.normalize import NormalizedProcess
from repro.mc.explicit import ExplicitStateChecker, InvariantResult
from repro.mc.transition import ReactionLTS, build_lts


def verify_non_blocking(
    process: NormalizedProcess,
    lts: Optional[ReactionLTS] = None,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
    checker=None,
) -> Verdict:
    """Definition 4 as a :class:`~repro.api.results.Verdict`.

    With ``checker`` (an :class:`~repro.mc.onthefly.OnTheFlyChecker`) the
    search is on-the-fly: it terminates on the first deadlock state and the
    verdict's :class:`Cost` reports how many states were actually expanded
    against the ``max_states`` bound.  Otherwise the explicit
    :class:`~repro.mc.transition.ReactionLTS` is (built and) scanned.
    """
    truncated = False
    with stopwatch() as elapsed:
        if checker is not None:
            # count the states this query visits (memo hits included): the
            # search stops at the first deadlock it reaches
            states = 0
            transitions = 0
            deadlock = None
            for state in checker.iter_states():
                states += 1
                outgoing = checker.transitions_from(state)
                transitions += len(outgoing)
                if not outgoing:
                    deadlock = state
                    break
            if deadlock is not None:
                result = InvariantResult(
                    "non-blocking",
                    False,
                    f"state {dict(deadlock)} has no reaction at all",
                )
            else:
                result = InvariantResult("non-blocking", True)
            bound = checker.max_states
            truncated = checker.truncated
        else:
            if lts is None:
                lts = build_lts(process, hierarchy, max_states=max_states)
            result = ExplicitStateChecker(lts).is_non_blocking()
            states = lts.state_count()
            transitions = lts.transition_count()
            bound = max_states
            truncated = lts.truncated
    diagnostics = diagnostics_from_invariants([result])
    if truncated and result.holds:
        diagnostics.append(
            Diagnostic(
                "exploration cut by the state bound — the verdict is bounded, "
                "not a proof; raise max_states for a conclusive answer",
                True,
                f"bound {bound}",
            )
        )
    return Verdict(
        prop="non-blocking",
        subject=process.name,
        holds=result.holds,
        method="explicit",
        diagnostics=diagnostics,
        cost=Cost(
            seconds=elapsed[0],
            states=states,
            transitions=transitions,
            state_bound=bound,
        ),
        report=result,
    )


def is_non_blocking(
    process: NormalizedProcess,
    lts: Optional[ReactionLTS] = None,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
) -> InvariantResult:
    """Definition 4, old entry point (shim over :func:`verify_non_blocking`).

    .. deprecated:: use ``Design.verify("non-blocking")`` or
       :func:`verify_non_blocking` — the Verdict wraps the same
       :class:`InvariantResult` as its ``report``.
    """
    warnings.warn(
        "is_non_blocking() is deprecated; use Design.verify('non-blocking') or "
        "verify_non_blocking() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    verdict = verify_non_blocking(process, lts, hierarchy, max_states)
    return verdict.report
