"""Weak endochrony (Definition 2) and its model-checking formulation.

Definition 2 asks a process to be deterministic and to satisfy the diamond
properties over independent reactions:

* (2a) a reaction that was possible after another independent reaction was
  already possible before it;
* (2b) two independent reactions enabled together can be merged into one;
* (2c) a merged reaction can be split back and performed sequentially.

:func:`check_weak_endochrony` checks these properties directly on the
reaction LTS of the boolean abstraction.  :func:`model_check_weak_endochrony`
uses the invariant formulation of Section 4.1 over the roots of the clock
hierarchy (properties (1)-(3)), which is how the paper proposes to verify the
property with Sigali; the two agree on the paper's examples and the second is
the one whose cost the compositional criterion is designed to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.api.results import Cost, Verdict, diagnostics_from_invariants, stopwatch
from repro.clocks.hierarchy import ClockHierarchy
from repro.lang.normalize import NormalizedProcess
from repro.mc.explicit import ExplicitStateChecker, InvariantResult
from repro.mc.invariants import WeakEndochronyInvariantReport, check_weak_endochrony_invariants
from repro.mc.transition import ReactionLTS, build_lts
from repro.mocc.reactions import Reaction, independent, merge_reactions
from repro.properties.compilable import ProcessAnalysis


@dataclass
class WeakEndochronyReport:
    """Outcome of checking Definition 2 on the reaction LTS."""

    process_name: str
    results: List[InvariantResult] = field(default_factory=list)
    states_explored: int = 0
    transitions_explored: int = 0

    def holds(self) -> bool:
        return all(result.holds for result in self.results)

    def failures(self) -> List[InvariantResult]:
        return [result for result in self.results if not result.holds]

    def __str__(self) -> str:
        status = "weakly endochronous" if self.holds() else "NOT weakly endochronous"
        lines = [
            f"{self.process_name}: {status} "
            f"({self.states_explored} states, {self.transitions_explored} transitions)"
        ]
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)


def _check_axiom_2a(checker: ExplicitStateChecker, lts: ReactionLTS) -> InvariantResult:
    """(2a): if b·r·s is possible with r, s independent, then b·s is possible."""
    name = "axiom 2a (commutation)"
    for state in lts.states:
        for first in checker.non_silent_reactions_from(state):
            successor = checker.successor(state, first)
            if successor is None:
                continue
            for second in checker.non_silent_reactions_from(successor):
                if not independent(first, second):
                    continue
                if not checker.enables(state, second):
                    return InvariantResult(
                        name,
                        False,
                        f"from state {dict(state)}, {second} is possible after {first} "
                        f"but not before it",
                    )
    return InvariantResult(name, True)


def _check_axiom_2b(checker: ExplicitStateChecker, lts: ReactionLTS) -> InvariantResult:
    """(2b): independent reactions enabled together can be merged."""
    name = "axiom 2b (merge)"
    for state in lts.states:
        enabled = checker.non_silent_reactions_from(state)
        for index, first in enumerate(enabled):
            for second in enabled[index + 1 :]:
                if not independent(first, second):
                    continue
                merged = merge_reactions(first, second)
                if not checker.enables(state, merged):
                    return InvariantResult(
                        name,
                        False,
                        f"from state {dict(state)}, {first} and {second} are enabled "
                        f"but their union is not",
                    )
    return InvariantResult(name, True)


def _split_candidates(reaction: Reaction, other: Reaction) -> Optional[Reaction]:
    """The common sub-reaction of two reactions (same signals with the same values)."""
    common = {
        name
        for name in reaction.present_signals() & other.present_signals()
        if reaction.value(name) == other.value(name)
    }
    if not common:
        return None
    return Reaction(reaction.domain, {name: reaction.value(name) for name in common})


def _check_axiom_2c(checker: ExplicitStateChecker, lts: ReactionLTS) -> InvariantResult:
    """(2c): merged reactions sharing a common part can be decomposed sequentially."""
    name = "axiom 2c (decomposition)"
    for state in lts.states:
        enabled = checker.non_silent_reactions_from(state)
        for index, first_union in enumerate(enabled):
            for second_union in enabled[index + 1 :]:
                core = _split_candidates(first_union, second_union)
                if core is None:
                    continue
                if core == first_union or core == second_union:
                    continue
                rest_first = Reaction(
                    first_union.domain,
                    {
                        name: first_union.value(name)
                        for name in first_union.present_signals() - core.present_signals()
                    },
                )
                rest_second = Reaction(
                    second_union.domain,
                    {
                        name: second_union.value(name)
                        for name in second_union.present_signals() - core.present_signals()
                    },
                )
                if rest_first.is_silent() or rest_second.is_silent():
                    continue
                # Definition 2 quantifies over *independent* reactions: the core and
                # the two remainders must be pairwise independent for (2c) to apply.
                if not independent(rest_first, rest_second):
                    continue
                if not checker.enables(state, core):
                    return InvariantResult(
                        name,
                        False,
                        f"from state {dict(state)}, the common part {core} of two enabled "
                        f"reactions is not itself enabled",
                    )
                after_core = checker.successor(state, core)
                if after_core is None:
                    continue
                for rest in (rest_first, rest_second):
                    if not checker.enables(after_core, rest):
                        return InvariantResult(
                            name,
                            False,
                            f"from state {dict(state)}, {core} cannot be followed by {rest} "
                            f"although their union is enabled",
                        )
    return InvariantResult(name, True)


def check_weak_endochrony(
    process: NormalizedProcess,
    lts: Optional[ReactionLTS] = None,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
) -> WeakEndochronyReport:
    """Check Definition 2 on the reaction LTS of the boolean abstraction."""
    if lts is None:
        lts = build_lts(process, hierarchy, max_states=max_states)
    checker = ExplicitStateChecker(lts)
    report = WeakEndochronyReport(
        process_name=process.name,
        states_explored=lts.state_count(),
        transitions_explored=lts.transition_count(),
    )
    report.results.append(checker.is_deterministic())
    report.results.append(_check_axiom_2a(checker, lts))
    report.results.append(_check_axiom_2b(checker, lts))
    report.results.append(_check_axiom_2c(checker, lts))
    return report


def model_check_weak_endochrony(
    process: NormalizedProcess,
    analysis: Optional[ProcessAnalysis] = None,
    lts: Optional[ReactionLTS] = None,
    flow_signals: Iterable[str] = (),
    max_states: int = 512,
) -> WeakEndochronyInvariantReport:
    """Section 4.1: check invariants (1)-(3) over the roots of the hierarchy."""
    analysis = analysis or ProcessAnalysis(process)
    if lts is None:
        lts = build_lts(process, analysis.hierarchy, max_states=max_states)
    flow_signals = tuple(flow_signals) or tuple(process.outputs)
    return check_weak_endochrony_invariants(
        lts, analysis.hierarchy.root_signals(), flow_signals
    )


def verify_weak_endochrony(
    process: NormalizedProcess,
    analysis: Optional[ProcessAnalysis] = None,
    lts: Optional[ReactionLTS] = None,
    method: str = "explicit",
    max_states: int = 512,
) -> Verdict:
    """Definition 2 as a :class:`~repro.api.results.Verdict`.

    ``method="explicit"`` checks the diamond axioms of Definition 2 directly
    on the reaction LTS (:func:`check_weak_endochrony`); ``method="symbolic"``
    uses the invariant formulation of Section 4.1 over the hierarchy roots
    (:func:`model_check_weak_endochrony`) — the form the paper would hand to
    Sigali, and the exploration whose cost Theorem 1 avoids.
    """
    with stopwatch() as elapsed:
        if method == "explicit":
            report = check_weak_endochrony(process, lts=lts, max_states=max_states)
        elif method == "symbolic":
            report = model_check_weak_endochrony(
                process, analysis=analysis, lts=lts, max_states=max_states
            )
        else:
            raise ValueError(
                f"unknown weak endochrony method {method!r}; use 'explicit' or 'symbolic'"
            )
    return Verdict(
        prop="weak-endochrony",
        subject=process.name,
        holds=report.holds(),
        method=method,
        diagnostics=diagnostics_from_invariants(report.results),
        cost=Cost(
            seconds=elapsed[0],
            states=report.states_explored,
            transitions=report.transitions_explored,
        ),
        report=report,
    )
