"""Weak endochrony — implements Definition 2 and the Section 4.1 formulation.

Definition 2 asks a process to be deterministic and to satisfy the diamond
properties over independent reactions:

* (2a) a reaction that was possible after another independent reaction was
  already possible before it;
* (2b) two independent reactions enabled together can be merged into one;
* (2c) a merged reaction can be split back and performed sequentially.

:func:`check_weak_endochrony` checks these properties directly on the
reaction LTS of the boolean abstraction.  :func:`model_check_weak_endochrony`
uses the invariant formulation of Section 4.1 over the roots of the clock
hierarchy (properties (1)-(3)), which is how the paper proposes to verify the
property with Sigali; the two agree on the paper's examples and the second is
the one whose cost the compositional criterion is designed to avoid.

Every axiom is implemented per state, so the same code runs two ways:

* eagerly — four sweeps over a pre-explored
  :class:`~repro.mc.transition.ReactionLTS`, reporting all four results;
* on-the-fly — when a ``checker``
  (:class:`~repro.mc.onthefly.OnTheFlyChecker`) is passed, one breadth-first
  sweep checks *all* axioms at each state as the frontier advances and
  returns at the first violating reaction, leaving the rest of the product
  unexpanded.  The verdict is the same (Definition 2 is a conjunction); only
  the number of reported diagnostics and the exploration cost differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.results import Cost, Verdict, diagnostics_from_invariants, stopwatch
from repro.clocks.hierarchy import ClockHierarchy
from repro.lang.normalize import NormalizedProcess
from repro.mc.explicit import ExplicitStateChecker, InvariantResult
from repro.mc.invariants import WeakEndochronyInvariantReport, check_weak_endochrony_invariants
from repro.mc.transition import ReactionLTS, State, build_lts
from repro.mocc.reactions import Reaction, independent, merge_reactions
from repro.properties.compilable import ProcessAnalysis


@dataclass
class WeakEndochronyReport:
    """Outcome of checking Definition 2 on the reaction LTS.

    ``complete`` is ``False`` when an on-the-fly run returned at the first
    violation (``results`` then holds the failing axiom only, and the
    exploration counts are the states/transitions actually expanded) or when
    the exploration was cut by the state bound — an all-holds report over a
    truncated state space is a *bounded* result, not a proof.
    """

    process_name: str
    results: List[InvariantResult] = field(default_factory=list)
    states_explored: int = 0
    transitions_explored: int = 0
    complete: bool = True

    def holds(self) -> bool:
        return all(result.holds for result in self.results)

    def failures(self) -> List[InvariantResult]:
        return [result for result in self.results if not result.holds]

    def __str__(self) -> str:
        status = "weakly endochronous" if self.holds() else "NOT weakly endochronous"
        lines = [
            f"{self.process_name}: {status} "
            f"({self.states_explored} states, {self.transitions_explored} transitions)"
        ]
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-state axiom checks (the unit both engines share)
# ---------------------------------------------------------------------------

def _determinism_at(checker, state: State) -> Optional[InvariantResult]:
    seen: Dict[Reaction, State] = {}
    for transition in checker.transitions_from(state):
        previous = seen.get(transition.reaction)
        if previous is not None and previous != transition.target:
            return InvariantResult(
                "determinism",
                False,
                f"reaction {transition.reaction} from {dict(state)} has two successors",
            )
        seen[transition.reaction] = transition.target
    return None


def _axiom_2a_at(checker, state: State) -> Optional[InvariantResult]:
    """(2a): if b·r·s is possible with r, s independent, then b·s is possible."""
    for first in checker.non_silent_reactions_from(state):
        successor = checker.successor(state, first)
        if successor is None:
            continue
        for second in checker.non_silent_reactions_from(successor):
            if not independent(first, second):
                continue
            if not checker.enables(state, second):
                return InvariantResult(
                    "axiom 2a (commutation)",
                    False,
                    f"from state {dict(state)}, {second} is possible after {first} "
                    f"but not before it",
                )
    return None


def _axiom_2b_at(checker, state: State) -> Optional[InvariantResult]:
    """(2b): independent reactions enabled together can be merged."""
    enabled = checker.non_silent_reactions_from(state)
    for index, first in enumerate(enabled):
        for second in enabled[index + 1 :]:
            if not independent(first, second):
                continue
            merged = merge_reactions(first, second)
            if not checker.enables(state, merged):
                return InvariantResult(
                    "axiom 2b (merge)",
                    False,
                    f"from state {dict(state)}, {first} and {second} are enabled "
                    f"but their union is not",
                )
    return None


def _split_candidates(reaction: Reaction, other: Reaction) -> Optional[Reaction]:
    """The common sub-reaction of two reactions (same signals with the same values).

    ``present_signals()`` is a cached frozenset shared by every caller (the
    axiom sweeps below intersect it O(|enabled|²) times per state), so the
    set algebra here never re-materializes per-call sets.
    """
    common = {
        name
        for name in reaction.present_signals() & other.present_signals()
        if reaction.value(name) == other.value(name)
    }
    if not common:
        return None
    return Reaction(reaction.domain, {name: reaction.value(name) for name in common})


def _axiom_2c_at(checker, state: State) -> Optional[InvariantResult]:
    """(2c): merged reactions sharing a common part can be decomposed sequentially."""
    name = "axiom 2c (decomposition)"
    enabled = checker.non_silent_reactions_from(state)
    for index, first_union in enumerate(enabled):
        for second_union in enabled[index + 1 :]:
            core = _split_candidates(first_union, second_union)
            if core is None:
                continue
            if core == first_union or core == second_union:
                continue
            rest_first = Reaction(
                first_union.domain,
                {
                    name_: first_union.value(name_)
                    for name_ in first_union.present_signals() - core.present_signals()
                },
            )
            rest_second = Reaction(
                second_union.domain,
                {
                    name_: second_union.value(name_)
                    for name_ in second_union.present_signals() - core.present_signals()
                },
            )
            if rest_first.is_silent() or rest_second.is_silent():
                continue
            # Definition 2 quantifies over *independent* reactions: the core and
            # the two remainders must be pairwise independent for (2c) to apply.
            if not independent(rest_first, rest_second):
                continue
            if not checker.enables(state, core):
                return InvariantResult(
                    name,
                    False,
                    f"from state {dict(state)}, the common part {core} of two enabled "
                    f"reactions is not itself enabled",
                )
            after_core = checker.successor(state, core)
            if after_core is None:
                continue
            for rest in (rest_first, rest_second):
                if not checker.enables(after_core, rest):
                    return InvariantResult(
                        name,
                        False,
                        f"from state {dict(state)}, {core} cannot be followed by {rest} "
                        f"although their union is enabled",
                    )
    return None


_AXIOMS = (
    ("determinism", _determinism_at),
    ("axiom 2a (commutation)", _axiom_2a_at),
    ("axiom 2b (merge)", _axiom_2b_at),
    ("axiom 2c (decomposition)", _axiom_2c_at),
)


def _sweep(checker, name: str, axiom_at) -> InvariantResult:
    """One full sweep of one axiom over every state the engine serves."""
    for state in checker.iter_states():
        violation = axiom_at(checker, state)
        if violation is not None:
            return violation
    return InvariantResult(name, True)


# ---------------------------------------------------------------------------
# The two drivers
# ---------------------------------------------------------------------------

def check_weak_endochrony(
    process: NormalizedProcess,
    lts: Optional[ReactionLTS] = None,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
    checker=None,
) -> WeakEndochronyReport:
    """Check Definition 2 on the reaction LTS of the boolean abstraction.

    With a pre-explored (or buildable) ``lts``, all four axioms are swept and
    reported.  With an on-the-fly ``checker``, the axioms are checked
    together at each state as the frontier advances and the check returns at
    the first violating reaction — the report is then marked incomplete and
    counts only the states actually expanded.
    """
    if checker is None:
        if lts is None:
            lts = build_lts(process, hierarchy, max_states=max_states)
        eager = ExplicitStateChecker(lts)
        report = WeakEndochronyReport(process_name=process.name)
        report.results = [_sweep(eager, name, axiom_at) for name, axiom_at in _AXIOMS]
        report.states_explored = lts.state_count()
        report.transitions_explored = lts.transition_count()
        return report

    # per-query exploration metric: the states this check visited (whether
    # the engine expanded them now or served them from the session's memo) —
    # the early-termination win Cost.states is meant to show
    report = WeakEndochronyReport(process_name=process.name)
    visited = 0
    transitions_seen = 0
    for state in checker.iter_states():
        visited += 1
        transitions_seen += len(checker.transitions_from(state))
        for _name, axiom_at in _AXIOMS:
            violation = axiom_at(checker, state)
            if violation is not None:
                report.results.append(violation)
                report.complete = False
                report.states_explored = visited
                report.transitions_explored = transitions_seen
                return report
    report.results = [InvariantResult(name, True) for name, _axiom_at in _AXIOMS]
    # a bound-cut exploration proves nothing beyond the bound
    report.complete = not checker.truncated
    report.states_explored = visited
    report.transitions_explored = transitions_seen
    return report


def model_check_weak_endochrony(
    process: NormalizedProcess,
    analysis: Optional[ProcessAnalysis] = None,
    lts: Optional[ReactionLTS] = None,
    flow_signals: Iterable[str] = (),
    max_states: int = 512,
    checker=None,
) -> WeakEndochronyInvariantReport:
    """Section 4.1: check invariants (1)-(3) over the roots of the hierarchy."""
    analysis = analysis or ProcessAnalysis(process)
    if checker is None and lts is None:
        lts = build_lts(process, analysis.hierarchy, max_states=max_states)
    flow_signals = tuple(flow_signals) or tuple(process.outputs)
    return check_weak_endochrony_invariants(
        lts, analysis.hierarchy.root_signals(), flow_signals, checker=checker
    )


def verify_weak_endochrony(
    process: NormalizedProcess,
    analysis: Optional[ProcessAnalysis] = None,
    lts: Optional[ReactionLTS] = None,
    method: str = "explicit",
    max_states: int = 512,
    checker=None,
) -> Verdict:
    """Definition 2 as a :class:`~repro.api.results.Verdict`.

    ``method="explicit"`` checks the diamond axioms of Definition 2 directly
    on the reaction LTS (:func:`check_weak_endochrony`); ``method="symbolic"``
    uses the invariant formulation of Section 4.1 over the hierarchy roots
    (:func:`model_check_weak_endochrony`) — the form the paper would hand to
    Sigali, and the exploration whose cost Theorem 1 avoids.  Either method
    accepts an on-the-fly ``checker`` instead of a pre-built ``lts``.
    """
    with stopwatch() as elapsed:
        if method == "explicit":
            report = check_weak_endochrony(
                process, lts=lts, max_states=max_states, checker=checker
            )
        elif method == "symbolic":
            report = model_check_weak_endochrony(
                process, analysis=analysis, lts=lts, max_states=max_states, checker=checker
            )
        else:
            raise ValueError(
                f"unknown weak endochrony method {method!r}; use 'explicit' or 'symbolic'"
            )
    return Verdict(
        prop="weak-endochrony",
        subject=process.name,
        holds=report.holds(),
        method=method,
        diagnostics=diagnostics_from_invariants(report.results),
        cost=Cost(
            seconds=elapsed[0],
            states=report.states_explored,
            transitions=report.transitions_explored,
            state_bound=max_states,
        ),
        report=report,
    )
