"""Scheduling graphs (Section 3.5).

The scheduling graph refines the clock hierarchy with the fine-grained order
in which signals and clocks must be computed within an instant.  This package
builds the graph from the inferred scheduling relations, reinforces it with
the constraints induced by clock calculation, computes its clock-labelled
transitive closure, decides acyclicity (Definition 8) and produces the
serialized schedules used by sequential code generation (Definition 9).
"""

from repro.sched.graph import SchedulingGraph, Edge
from repro.sched.reinforce import reinforce
from repro.sched.closure import transitive_closure, is_acyclic, cyclic_nodes
from repro.sched.serialize import sequential_schedule, SerializationError

__all__ = [
    "SchedulingGraph",
    "Edge",
    "reinforce",
    "transitive_closure",
    "is_acyclic",
    "cyclic_nodes",
    "sequential_schedule",
    "SerializationError",
]
