"""Clock-labelled transitive closure and acyclicity (Definition 8).

The closure rules of Section 3.5 are:

* every edge ``a →c b`` starts a path ``a ⇒c b``;
* two paths ``a ⇒c b`` and ``a ⇒d b`` merge into ``a ⇒c∨d b``;
* two paths ``a ⇒c b`` and ``b ⇒d z`` chain into ``a ⇒c∧d z``.

A graph is acyclic iff every self-path ``a ⇒e a`` has an empty clock under
the timing relations (``R |= e = 0``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.bdd.bdd import BDD
from repro.clocks.relations import Node
from repro.sched.graph import SchedulingGraph


def transitive_closure(graph: SchedulingGraph) -> Dict[Tuple[Node, Node], BDD]:
    """The labelled transitive closure of the scheduling graph.

    Returns a mapping from node pairs to the BDD of the clock at which a path
    exists between them.  The computation is a label-weighted Floyd–Warshall:
    labels combine by conjunction along a path and by disjunction across
    alternative paths.
    """
    manager = graph.algebra.manager
    closure: Dict[Tuple[Node, Node], BDD] = {}
    for edge in graph.edges():
        key = (edge.source, edge.target)
        closure[key] = closure.get(key, manager.false) | edge.label

    nodes = graph.nodes()
    for middle in nodes:
        for source in nodes:
            through = closure.get((source, middle))
            if through is None or through.is_false():
                continue
            for target in nodes:
                onward = closure.get((middle, target))
                if onward is None or onward.is_false():
                    continue
                combined = through & onward
                if combined.is_false():
                    continue
                key = (source, target)
                closure[key] = closure.get(key, manager.false) | combined
    return closure


def _feasible_edges(graph: SchedulingGraph):
    """The edges whose clock label can actually tick under the timing relations.

    Each label is conjoined with the relation *factors* it touches
    (:meth:`~repro.clocks.algebra.ClockAlgebra.constrained`) rather than the
    full relation — equi-satisfiable, and on an N-component composition the
    per-edge BDD work stays local to the components the edge mentions.
    """
    algebra = graph.algebra
    if not algebra.satisfiable():
        return []
    feasible = []
    for edge in graph.edges():
        constrained = algebra.constrained(edge.label)
        if constrained.is_satisfiable():
            feasible.append((edge, constrained))
    return feasible


def _strongly_connected_components(nodes, successors) -> List[List[Node]]:
    """Tarjan's algorithm (iterative) over the feasible-edge graph."""
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(successors.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(successors.get(successor, ()))))
                    advanced = True
                    break
                if on_stack.get(successor):
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def cyclic_nodes(graph: SchedulingGraph) -> List[Tuple[Node, BDD]]:
    """Nodes that lie on a cycle whose clock is not provably empty.

    The labelled all-pairs closure is only computed inside non-trivial
    strongly connected components of the feasible-edge graph: acyclic graphs
    (the common case) are dismissed by the SCC decomposition alone, which
    keeps the check cheap on large compositions.
    """
    manager = graph.algebra.manager
    algebra = graph.algebra
    feasible = _feasible_edges(graph)
    successors: Dict[Node, List[Node]] = {}
    for edge, _constrained in feasible:
        successors.setdefault(edge.source, []).append(edge.target)
    nodes = graph.nodes()
    components = _strongly_connected_components(nodes, successors)

    offenders: List[Tuple[Node, BDD]] = []
    self_loops = {
        edge.source: constrained for edge, constrained in feasible if edge.source == edge.target
    }
    for node, constrained in sorted(self_loops.items()):
        offenders.append((node, constrained))

    for component in components:
        if len(component) < 2:
            continue
        members = set(component)
        closure: Dict[Tuple[Node, Node], BDD] = {}
        for edge, constrained in feasible:
            if edge.source in members and edge.target in members:
                key = (edge.source, edge.target)
                closure[key] = closure.get(key, manager.false) | constrained
        ordered = sorted(members)
        for middle in ordered:
            for source in ordered:
                through = closure.get((source, middle))
                if through is None or through.is_false():
                    continue
                for target in ordered:
                    onward = closure.get((middle, target))
                    if onward is None or onward.is_false():
                        continue
                    combined = through & onward
                    if combined.is_false():
                        continue
                    key = (source, target)
                    closure[key] = closure.get(key, manager.false) | combined
        for node in ordered:
            label = closure.get((node, node))
            # the closure entries already carry the relation factors of every
            # label on their path (constrained labels are closed under
            # conjunction), so satisfiability alone decides feasibility here
            if label is not None and label.is_satisfiable():
                if node not in self_loops:
                    offenders.append((node, algebra.constrained(label)))
    return offenders


def is_acyclic(graph: SchedulingGraph) -> bool:
    """Definition 8: every cycle of the closure has an empty clock under R."""
    return not cyclic_nodes(graph)
