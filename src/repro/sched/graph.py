"""The clock-labelled scheduling graph.

Nodes are either signal values (``("sig", x)``) or signal clocks
(``("clk", x)``); an edge ``a →c b`` states that, at the instants of clock
``c``, the computation of ``b`` cannot be scheduled before that of ``a``.
Edge labels are kept both as clock expressions (for display) and as BDDs (for
the closure and acyclicity computations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.bdd.bdd import BDD
from repro.clocks.algebra import ClockAlgebra
from repro.clocks.expressions import format_clock_expression
from repro.clocks.relations import Node, SchedulingRelation, TimingRelations, format_node
from repro.lang.ast import ClockExpressionSyntax
from repro.lang.normalize import NormalizedProcess


@dataclass
class Edge:
    """One scheduling edge ``source →clock target``."""

    source: Node
    target: Node
    clock: ClockExpressionSyntax
    label: BDD

    def __str__(self) -> str:
        return (
            f"{format_node(self.source)} --[{format_clock_expression(self.clock)}]--> "
            f"{format_node(self.target)}"
        )


class SchedulingGraph:
    """A directed multigraph of scheduling constraints with clock labels."""

    def __init__(self, process: NormalizedProcess, algebra: ClockAlgebra):
        self.process = process
        self.algebra = algebra
        self._edges: Dict[Tuple[Node, Node], Edge] = {}
        self._nodes: Set[Node] = set()

    # -- construction -----------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._nodes.add(node)

    def add_edge(self, source: Node, target: Node, clock: ClockExpressionSyntax) -> None:
        """Add (or widen, by disjunction) an edge from ``source`` to ``target``."""
        label = self.algebra.encode(clock)
        self.add_edge_bdd(source, target, clock, label)

    def add_edge_bdd(
        self, source: Node, target: Node, clock: ClockExpressionSyntax, label: BDD
    ) -> None:
        self._nodes.add(source)
        self._nodes.add(target)
        key = (source, target)
        existing = self._edges.get(key)
        if existing is None:
            self._edges[key] = Edge(source, target, clock, label)
        else:
            self._edges[key] = Edge(source, target, existing.clock, existing.label | label)

    @classmethod
    def from_relations(
        cls,
        process: NormalizedProcess,
        relations: TimingRelations,
        algebra: Optional[ClockAlgebra] = None,
    ) -> "SchedulingGraph":
        """Build the initial graph from inferred scheduling relations."""
        if algebra is None:
            algebra = ClockAlgebra(process, relations)
        graph = cls(process, algebra)
        for relation in relations.scheduling_relations:
            graph.add_edge(relation.source, relation.target, relation.clock)
        for name in process.all_signals():
            graph.add_node(("sig", name))
            graph.add_node(("clk", name))
        return graph

    # -- queries -----------------------------------------------------------------
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(sorted(self._nodes))

    def edges(self) -> Tuple[Edge, ...]:
        return tuple(self._edges[key] for key in sorted(self._edges))

    def edge(self, source: Node, target: Node) -> Optional[Edge]:
        return self._edges.get((source, target))

    def successors(self, node: Node) -> Iterator[Edge]:
        for (source, _target), edge in sorted(self._edges.items()):
            if source == node:
                yield edge

    def predecessors(self, node: Node) -> Iterator[Edge]:
        for (_source, target), edge in sorted(self._edges.items()):
            if target == node:
                yield edge

    def edge_count(self) -> int:
        return len(self._edges)

    def copy(self) -> "SchedulingGraph":
        clone = SchedulingGraph(self.process, self.algebra)
        clone._nodes = set(self._nodes)
        clone._edges = dict(self._edges)
        return clone

    def effective_edges(self) -> Tuple[Edge, ...]:
        """Edges whose label is not provably empty under the timing relations."""
        return tuple(
            edge for edge in self.edges() if self.algebra.feasible(edge.label)
        )

    def describe(self) -> str:
        lines = [f"scheduling graph of {self.process.name}:"]
        lines.extend(f"  {edge}" for edge in self.edges())
        return "\n".join(lines)
