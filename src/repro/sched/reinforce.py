"""Reinforcement of the scheduling graph (Section 3.5).

The calculation of clocks in disjunctive form induces scheduling constraints
of its own, which are added on top of the inferred data dependencies:

1. ``x^ →x^ x`` for every signal: a value cannot be computed before its clock;
2. if ``R |= x^ = [y]`` or ``R |= x^ = [¬y]``, then ``y →y^ x^``: a sampled
   clock cannot be computed before the sampling value;
3. if ``R |= x^ = y^ f z^`` (``f ∈ {∨, ∧, \\}``), then ``y^ →y^ x^`` and
   ``z^ →z^ x^``: a composite clock needs its operand clocks first.
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.algebra import ClockAlgebra
from repro.clocks.relations import TimingRelations, clock_node, signal_node
from repro.lang.ast import (
    ClockBinary,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
)
from repro.lang.normalize import NormalizedProcess
from repro.sched.graph import SchedulingGraph


def _clock_operand_dependencies(
    graph: SchedulingGraph, target: str, expression: ClockExpressionSyntax
) -> None:
    """Add dependencies from the operands of a clock definition to the clock."""
    if isinstance(expression, ClockOf):
        graph.add_edge(clock_node(expression.name), clock_node(target), ClockOf(expression.name))
    elif isinstance(expression, (ClockTrue, ClockFalse)):
        graph.add_edge(signal_node(expression.name), clock_node(target), ClockOf(expression.name))
    elif isinstance(expression, ClockBinary):
        _clock_operand_dependencies(graph, target, expression.left)
        _clock_operand_dependencies(graph, target, expression.right)


def reinforce(
    graph: SchedulingGraph,
    relations: TimingRelations,
    process: Optional[NormalizedProcess] = None,
) -> SchedulingGraph:
    """Return a reinforced copy of the scheduling graph."""
    process = process or graph.process
    reinforced = graph.copy()

    # rule 1: the clock of a signal precedes its value
    for name in process.all_signals():
        reinforced.add_edge(clock_node(name), signal_node(name), ClockOf(name))

    # rules 2 and 3: clock definitions order the calculation of clocks
    for relation in relations.clock_relations:
        if not isinstance(relation.left, ClockOf):
            continue
        target = relation.left.name
        right = relation.right
        if isinstance(right, (ClockTrue, ClockFalse, ClockBinary)):
            _clock_operand_dependencies(reinforced, target, right)
        elif isinstance(right, ClockOf):
            # synchronous signals: either clock determines the other; no
            # additional scheduling constraint is required.
            continue
    return reinforced
