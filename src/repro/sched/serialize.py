"""Serialization of the scheduling graph (Definition 9).

Sequential code generation needs a total order of the computations of one
instant that refines the scheduling graph.  Definition 9 asks the chosen
reinforcement to preserve composability: any environment graph that keeps the
original graph acyclic must keep the serialized graph acyclic too.  The
serialization below preserves this property by only ordering nodes that the
closure already relates in one direction, and breaking the remaining ties by
a deterministic, hierarchy-aware ordering (clocks before values, inputs
before outputs, then lexicographic order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.clocks.hierarchy import ClockHierarchy
from repro.clocks.relations import Node
from repro.sched.closure import transitive_closure
from repro.sched.graph import SchedulingGraph


class SerializationError(Exception):
    """Raised when the scheduling graph cannot be serialized (feasible cycle)."""


def _tie_break_key(
    node: Node, graph: SchedulingGraph, hierarchy: Optional[ClockHierarchy]
) -> Tuple:
    kind, name = node
    depth = 0
    if hierarchy is not None:
        clock_class = hierarchy.class_of_signal(name)
        if clock_class is not None:
            parents = hierarchy.parent_map()
            index = clock_class.index
            while parents.get(index) is not None:
                depth += 1
                index = parents[index]
    is_input = name not in {
        equation.defined_signal() for equation in graph.process.equations
    }
    return (depth, kind != "clk", not is_input, name)


def sequential_schedule(
    graph: SchedulingGraph,
    hierarchy: Optional[ClockHierarchy] = None,
    nodes: Optional[Sequence[Node]] = None,
) -> List[Node]:
    """A total order of the graph nodes compatible with every feasible edge.

    Edges whose clock label is provably empty under the timing relations are
    ignored (they can never constrain an actual instant).  Raises
    :class:`SerializationError` when a feasible cycle remains.
    """
    wanted = list(nodes) if nodes is not None else list(graph.nodes())
    feasible_edges = [
        edge
        for edge in graph.edges()
        if graph.algebra.feasible(edge.label)
        and edge.source in wanted
        and edge.target in wanted
    ]
    successors: Dict[Node, Set[Node]] = {node: set() for node in wanted}
    indegree: Dict[Node, int] = {node: 0 for node in wanted}
    seen_pairs: Set[Tuple[Node, Node]] = set()
    for edge in feasible_edges:
        pair = (edge.source, edge.target)
        if pair in seen_pairs or edge.source == edge.target:
            continue
        seen_pairs.add(pair)
        successors[edge.source].add(edge.target)
        indegree[edge.target] += 1

    ready = sorted(
        (node for node in wanted if indegree[node] == 0),
        key=lambda node: _tie_break_key(node, graph, hierarchy),
    )
    order: List[Node] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for successor in sorted(successors[node]):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
        ready.sort(key=lambda candidate: _tie_break_key(candidate, graph, hierarchy))
    if len(order) != len(wanted):
        remaining = sorted(set(wanted) - set(order))
        raise SerializationError(
            f"scheduling graph has a feasible cycle through {remaining[:6]}"
        )
    return order
