"""Executable semantics of normalized Signal processes.

Two complementary views are provided:

* :mod:`repro.semantics.interpreter` — an operational, instant-by-instant
  constraint solver that computes one reaction at a time (used for
  simulation, as an oracle for generated code, and to build traces);
* :mod:`repro.semantics.denotational` — bounded enumeration of the behaviors
  of a process for given input flows, yielding the finite
  :class:`~repro.mocc.processes.DenotationalProcess` objects on which the
  equivalences and properties of the paper are checked.
"""

from repro.semantics.interpreter import (
    ABSENT,
    TICK,
    ClockError,
    UnderdeterminedError,
    SignalInterpreter,
    InstantResult,
)
from repro.semantics.environment import FlowEnvironment, ReactiveEnvironment
from repro.semantics.denotational import (
    enumerate_behaviors,
    behavior_from_run,
    run_to_completion,
)

__all__ = [
    "ABSENT",
    "TICK",
    "ClockError",
    "UnderdeterminedError",
    "SignalInterpreter",
    "InstantResult",
    "FlowEnvironment",
    "ReactiveEnvironment",
    "enumerate_behaviors",
    "behavior_from_run",
    "run_to_completion",
]
