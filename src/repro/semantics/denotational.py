"""Bounded denotational semantics: enumerating the behaviors of a process.

The paper's properties (endochrony, isochrony) quantify over the set of
behaviors of a process.  For checking them on examples, this module
enumerates behaviors up to a bounded number of instants:

* :func:`run_to_completion` executes a process deterministically against a
  :class:`~repro.semantics.environment.ReactiveEnvironment` and returns the
  resulting behavior — the synchronous execution;
* :func:`enumerate_behaviors` explores every way a process can consume
  untimed input flows (a :class:`~repro.semantics.environment.FlowEnvironment`),
  which yields the bounded set of behaviors used for trace-based checks of
  endochrony (Definition 1) and isochrony (Definition 3).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lang.normalize import NormalizedProcess
from repro.mocc.behaviors import Behavior
from repro.mocc.processes import DenotationalProcess
from repro.mocc.signals import SignalTrace
from repro.semantics.environment import FlowEnvironment, ReactiveEnvironment
from repro.semantics.interpreter import ABSENT, InstantResult, SignalInterpreter


def behavior_from_run(
    results: Sequence[InstantResult],
    signals: Optional[Iterable[str]] = None,
    drop_silent: bool = False,
) -> Behavior:
    """Assemble the behavior of a run from its per-instant results.

    Instant ``i`` of the run becomes tag ``i``.  When ``drop_silent`` is true,
    instants in which none of the selected signals is present do not
    contribute a tag (they are stuttering steps of the selected signals).
    """
    if signals is None and results:
        signals = results[0].presence.keys()
    names = tuple(sorted(signals or ()))
    events: Dict[str, Dict[int, object]] = {name: {} for name in names}
    tag = 0
    for result in results:
        present_here = [name for name in names if result.present(name)]
        if drop_silent and not present_here:
            continue
        for name in present_here:
            events[name][tag] = result.value(name)
        tag += 1
    return Behavior({name: SignalTrace(per_signal) for name, per_signal in events.items()})


def run_to_completion(
    process: NormalizedProcess,
    environment: ReactiveEnvironment,
    assume: Optional[Sequence[Mapping[str, object]]] = None,
) -> List[InstantResult]:
    """Execute a process against a reactive environment, one reaction per instant."""
    interpreter = SignalInterpreter(process)
    results: List[InstantResult] = []
    for index, inputs in enumerate(environment.instants()):
        instant_assume = assume[index] if assume and index < len(assume) else None
        results.append(interpreter.step(inputs=inputs, assume=instant_assume))
    return results


def _input_choices(
    process: NormalizedProcess,
    environment: FlowEnvironment,
    include_silent: bool,
) -> List[Dict[str, object]]:
    """All ways to pick a non-deterministic subset of available inputs for one instant."""
    available = [name for name in process.inputs if environment.available(name)]
    choices: List[Dict[str, object]] = []
    sizes = range(0 if include_silent else 1, len(available) + 1)
    for size in sizes:
        for subset in combinations(available, size):
            assignment: Dict[str, object] = {name: ABSENT for name in process.inputs}
            for name in subset:
                assignment[name] = environment.peek(name)
            choices.append(assignment)
    if not choices and include_silent:
        choices.append({name: ABSENT for name in process.inputs})
    return choices


def enumerate_behaviors(
    process: NormalizedProcess,
    flows: Mapping[str, Sequence[object]],
    max_instants: int = 8,
    signals: Optional[Iterable[str]] = None,
    include_silent: bool = False,
    require_exhausted: bool = True,
    max_behaviors: int = 10_000,
) -> DenotationalProcess:
    """Enumerate the behaviors of ``process`` over the given untimed input flows.

    The exploration tries, at every instant, every subset of inputs that still
    have values available, keeps the branches accepted by the interpreter and
    collects the behaviors reached when either every flow is exhausted (the
    default) or the depth bound is hit.  The resulting finite set of behaviors
    is returned as a :class:`~repro.mocc.processes.DenotationalProcess` over
    ``signals`` (all signals of the process by default).
    """
    names = tuple(sorted(signals)) if signals is not None else process.all_signals()
    interpreter = SignalInterpreter(process)
    collected: List[Behavior] = []
    seen: Set[Behavior] = set()

    def record(results: Sequence[InstantResult]) -> None:
        behavior = behavior_from_run(results, names, drop_silent=True)
        if behavior not in seen:
            seen.add(behavior)
            collected.append(behavior)

    def explore(environment: FlowEnvironment, trace: List[InstantResult], depth: int) -> None:
        if len(collected) >= max_behaviors:
            return
        if environment.exhausted():
            record(trace)
            return
        if depth >= max_instants:
            if not require_exhausted:
                record(trace)
            return
        progressed = False
        for assignment in _input_choices(process, environment, include_silent):
            saved_state = interpreter.snapshot_state()
            result = interpreter.try_step(inputs=assignment, commit=True)
            if result is None:
                interpreter.restore_state(saved_state)
                continue
            child_environment = environment.copy()
            for name, value in assignment.items():
                if value is not ABSENT:
                    child_environment.pop(name)
            progressed = True
            trace.append(result)
            explore(child_environment, trace, depth + 1)
            trace.pop()
            interpreter.restore_state(saved_state)
        if not progressed and not require_exhausted:
            record(trace)

    explore(FlowEnvironment(flows), [], 0)
    return DenotationalProcess(names, collected)
