"""Execution environments: how input signals are fed to a process.

Two environments are provided, mirroring the two sides of isochrony:

* :class:`ReactiveEnvironment` — the *synchronous* view: for every instant it
  dictates which inputs are present and with which values (a prescribed
  timing of the environment);
* :class:`FlowEnvironment` — the *asynchronous* view: each input carries a
  FIFO of values with no timing information, which is exactly the information
  preserved by flow equivalence.  The environment answers "is a value
  available?" and hands values out in order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.semantics.interpreter import ABSENT


class ReactiveEnvironment:
    """A prescribed, instant-indexed assignment of the input signals.

    ``schedule`` is a sequence of instants; each instant maps input names to a
    value or :data:`~repro.semantics.interpreter.ABSENT`.  Inputs not
    mentioned in an instant are absent.
    """

    def __init__(self, inputs: Sequence[str], schedule: Sequence[Mapping[str, object]]):
        self.inputs = tuple(inputs)
        self.schedule: List[Dict[str, object]] = [dict(instant) for instant in schedule]
        unknown = {
            name for instant in self.schedule for name in instant if name not in self.inputs
        }
        if unknown:
            raise ValueError(f"schedule mentions non-input signals: {sorted(unknown)}")

    def __len__(self) -> int:
        return len(self.schedule)

    def instant(self, index: int) -> Dict[str, object]:
        """The complete input assignment of instant ``index`` (absences made explicit)."""
        prescribed = self.schedule[index] if index < len(self.schedule) else {}
        return {name: prescribed.get(name, ABSENT) for name in self.inputs}

    def instants(self) -> Iterable[Dict[str, object]]:
        for index in range(len(self.schedule)):
            yield self.instant(index)


class FlowEnvironment:
    """Untimed input flows: one FIFO of values per input signal.

    This is the asynchronous environment of the paper: the network preserves
    the sequence of values of every signal but not their synchronization.
    """

    def __init__(self, flows: Mapping[str, Sequence[object]]):
        self._flows: Dict[str, Deque[object]] = {
            name: deque(values) for name, values in flows.items()
        }
        self._consumed: Dict[str, List[object]] = {name: [] for name in flows}

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(sorted(self._flows))

    def available(self, name: str) -> bool:
        """True iff the flow of ``name`` still holds at least one value."""
        return bool(self._flows.get(name))

    def peek(self, name: str) -> object:
        """The next value of ``name`` without consuming it."""
        if not self._flows.get(name):
            raise IndexError(f"flow of signal {name!r} is exhausted")
        return self._flows[name][0]

    def pop(self, name: str) -> object:
        """Consume and return the next value of ``name``."""
        if not self._flows.get(name):
            raise IndexError(f"flow of signal {name!r} is exhausted")
        value = self._flows[name].popleft()
        self._consumed[name].append(value)
        return value

    def push_back(self, name: str, value: object) -> None:
        """Return a value to the front of the flow (used by exploration)."""
        self._flows[name].appendleft(value)
        if self._consumed[name] and self._consumed[name][-1] == value:
            self._consumed[name].pop()

    def remaining(self, name: str) -> Tuple[object, ...]:
        return tuple(self._flows.get(name, ()))

    def consumed(self, name: str) -> Tuple[object, ...]:
        return tuple(self._consumed.get(name, ()))

    def exhausted(self) -> bool:
        """True iff every input flow has been fully consumed."""
        return all(not values for values in self._flows.values())

    def copy(self) -> "FlowEnvironment":
        clone = FlowEnvironment({name: tuple(values) for name, values in self._flows.items()})
        clone._consumed = {name: list(values) for name, values in self._consumed.items()}
        return clone
