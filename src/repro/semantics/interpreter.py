"""Operational interpreter for normalized Signal processes.

One call to :meth:`SignalInterpreter.step` computes one *reaction*: given the
presence and values of (some of) the input signals, the interpreter solves
the presence and value of every signal of the process by propagating the
constraints of the primitive equations to a fixpoint, then commits the state
of the delay equations.

The propagation uses a three-valued presence domain (present / absent /
unknown).  When propagation reaches a fixpoint and some presences remain
unknown, the interpreter (optionally) completes the reaction by absence —
the behaviour expected of endochronous specifications, whose reactions are
fully determined by the signals already known to be present — and then
re-checks that every equation is satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.lang.ast import (
    ClockBinary,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Const,
)
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    NormalizedProcess,
    SamplingEquation,
)
from repro.mocc.reactions import Reaction


class _Absent:
    """Singleton marker for an explicitly absent input signal."""

    _instance: Optional["_Absent"] = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ABSENT"


#: pass ``ABSENT`` as an input value to state that the signal has no event.
ABSENT = _Absent()


class _Tick:
    """Singleton marker forcing a signal to be present without fixing its value."""

    _instance: Optional["_Tick"] = None

    def __new__(cls) -> "_Tick":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TICK"


#: pass ``TICK`` in ``assume`` to force a signal present, letting its value be computed.
TICK = _Tick()

#: three-valued presence domain
PRESENT = "present"
MISSING = "absent"
UNKNOWN = "unknown"


class ClockError(Exception):
    """Raised when an instant's constraints are contradictory (blocked reaction)."""


class UnderdeterminedError(Exception):
    """Raised when a reaction cannot be fully determined from the given inputs."""


@dataclass
class InstantResult:
    """The outcome of one reaction: presence, values, and the reaction object."""

    presence: Dict[str, bool]
    values: Dict[str, object]
    reaction: Reaction

    def is_silent(self) -> bool:
        return self.reaction.is_silent()

    def present(self, name: str) -> bool:
        return self.presence.get(name, False)

    def value(self, name: str) -> object:
        return self.values[name]


_OPERATORS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else a // b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "xor": lambda a, b: bool(a) != bool(b),
    "=": lambda a, b: a == b,
    "/=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_UNARY_OPERATORS = {
    "not": lambda a: not a,
    "-": lambda a: -a,
    "id": lambda a: a,
}


def apply_operator(operator: str, values: Tuple[object, ...]) -> object:
    """Evaluate a functional operator on concrete values."""
    if len(values) == 1:
        if operator in _UNARY_OPERATORS:
            return _UNARY_OPERATORS[operator](values[0])
        if operator in _OPERATORS:
            raise ValueError(f"operator {operator!r} expects two operands")
    if len(values) == 2 and operator in _OPERATORS:
        return _OPERATORS[operator](values[0], values[1])
    raise ValueError(f"unsupported operator {operator!r} with {len(values)} operands")


class _InstantSolver:
    """Constraint propagation for a single instant."""

    def __init__(self, process: NormalizedProcess, state: Mapping[str, object]):
        self.process = process
        self.state = state
        self.presence: Dict[str, str] = {name: UNKNOWN for name in process.all_signals()}
        self.values: Dict[str, object] = {}

    # -- elementary updates -----------------------------------------------
    def set_presence(self, name: str, status: str) -> bool:
        current = self.presence[name]
        if current == status:
            return False
        if current != UNKNOWN:
            raise ClockError(
                f"signal {name!r} is both {current} and {status} in the same instant"
            )
        self.presence[name] = status
        return True

    def set_value(self, name: str, value: object) -> bool:
        changed = self.set_presence(name, PRESENT)
        if name in self.values:
            if self.values[name] != value:
                raise ClockError(
                    f"signal {name!r} takes two different values "
                    f"({self.values[name]!r} and {value!r}) in the same instant"
                )
            return changed
        self.values[name] = value
        return True

    # -- operand helpers ------------------------------------------------------
    def operand_presence(self, operand) -> str:
        if isinstance(operand, Const):
            return PRESENT
        return self.presence[operand]

    def operand_value(self, operand):
        if isinstance(operand, Const):
            return operand.value
        return self.values.get(operand)

    # -- clock expression evaluation (three-valued) -----------------------------
    def eval_clock(self, expression: ClockExpressionSyntax) -> Optional[bool]:
        """Evaluate a clock expression to True / False / None (unknown)."""
        if isinstance(expression, ClockEmpty):
            return False
        if isinstance(expression, ClockOf):
            status = self.presence[expression.name]
            if status == PRESENT:
                return True
            if status == MISSING:
                return False
            return None
        if isinstance(expression, (ClockTrue, ClockFalse)):
            status = self.presence[expression.name]
            if status == MISSING:
                return False
            if status == PRESENT:
                value = self.values.get(expression.name)
                if value is None:
                    return None
                truth = bool(value)
                return truth if isinstance(expression, ClockTrue) else not truth
            return None
        if isinstance(expression, ClockBinary):
            left = self.eval_clock(expression.left)
            right = self.eval_clock(expression.right)
            if expression.operator == "and":
                if left is False or right is False:
                    return False
                if left is True and right is True:
                    return True
                return None
            if expression.operator == "or":
                if left is True or right is True:
                    return True
                if left is False and right is False:
                    return False
                return None
            if expression.operator == "diff":
                if left is False:
                    return False
                if left is True and right is False:
                    return True
                if right is True:
                    return False
                return None
        raise TypeError(f"unsupported clock expression: {expression!r}")

    def force_clock(self, expression: ClockExpressionSyntax, truth: bool) -> bool:
        """Propagate a known truth value into an atomic clock expression."""
        changed = False
        if isinstance(expression, ClockOf):
            changed |= self.set_presence(expression.name, PRESENT if truth else MISSING)
        elif isinstance(expression, ClockTrue):
            if truth:
                changed |= self.set_value(expression.name, True)
            elif self.presence[expression.name] == PRESENT and self.values.get(
                expression.name
            ) is None:
                # present but [x] is false: the value must be false
                changed |= self.set_value(expression.name, False)
        elif isinstance(expression, ClockFalse):
            if truth:
                changed |= self.set_value(expression.name, False)
            elif self.presence[expression.name] == PRESENT and self.values.get(
                expression.name
            ) is None:
                changed |= self.set_value(expression.name, True)
        elif isinstance(expression, ClockBinary) and truth:
            if expression.operator == "and":
                changed |= self.force_clock(expression.left, True)
                changed |= self.force_clock(expression.right, True)
            elif expression.operator == "or":
                left = self.eval_clock(expression.left)
                right = self.eval_clock(expression.right)
                if left is False:
                    changed |= self.force_clock(expression.right, True)
                elif right is False:
                    changed |= self.force_clock(expression.left, True)
            elif expression.operator == "diff":
                changed |= self.force_clock(expression.left, True)
                changed |= self.force_clock(expression.right, False)
        elif isinstance(expression, ClockBinary) and not truth:
            if expression.operator == "or":
                changed |= self.force_clock(expression.left, False)
                changed |= self.force_clock(expression.right, False)
            elif expression.operator == "and":
                left = self.eval_clock(expression.left)
                right = self.eval_clock(expression.right)
                if left is True:
                    changed |= self.force_clock(expression.right, False)
                elif right is True:
                    changed |= self.force_clock(expression.left, False)
        return changed

    # -- equation propagation ------------------------------------------------
    def propagate_equation(self, equation) -> bool:
        changed = False
        if isinstance(equation, FunctionEquation):
            members = [equation.target] + list(equation.read_signals())
            statuses = [self.presence[name] for name in members]
            if any(status == PRESENT for status in statuses):
                for name in members:
                    changed |= self.set_presence(name, PRESENT)
            if any(status == MISSING for status in statuses):
                for name in members:
                    changed |= self.set_presence(name, MISSING)
            if self.presence[equation.target] == PRESENT:
                operand_values = [self.operand_value(op) for op in equation.operands]
                if all(value is not None for value in operand_values):
                    result = apply_operator(equation.operator, tuple(operand_values))
                    changed |= self.set_value(equation.target, result)
        elif isinstance(equation, DelayEquation):
            members = [equation.target, equation.source]
            statuses = [self.presence[name] for name in members]
            if any(status == PRESENT for status in statuses):
                for name in members:
                    changed |= self.set_presence(name, PRESENT)
            if any(status == MISSING for status in statuses):
                for name in members:
                    changed |= self.set_presence(name, MISSING)
            if self.presence[equation.target] == PRESENT:
                changed |= self.set_value(equation.target, self.state[equation.target])
        elif isinstance(equation, SamplingEquation):
            condition = equation.condition
            condition_status = self.presence[condition]
            condition_value = self.values.get(condition)
            source_status = self.operand_presence(equation.source)
            # downward: condition absent/false or source absent forces absence
            if condition_status == MISSING or (
                condition_status == PRESENT and condition_value is False
            ):
                changed |= self.set_presence(equation.target, MISSING)
            if source_status == MISSING:
                changed |= self.set_presence(equation.target, MISSING)
            # downward: everything present and condition true forces presence
            if (
                condition_status == PRESENT
                and condition_value is True
                and source_status == PRESENT
            ):
                changed |= self.set_presence(equation.target, PRESENT)
            # upward: target present forces condition true and source present
            if self.presence[equation.target] == PRESENT:
                changed |= self.set_value(condition, True)
                if isinstance(equation.source, str):
                    changed |= self.set_presence(equation.source, PRESENT)
            # value
            if self.presence[equation.target] == PRESENT:
                source_value = self.operand_value(equation.source)
                if source_value is not None:
                    changed |= self.set_value(equation.target, source_value)
        elif isinstance(equation, MergeEquation):
            target = equation.target
            preferred = equation.preferred
            alternative = equation.alternative
            if self.presence[preferred] == PRESENT or self.presence[alternative] == PRESENT:
                changed |= self.set_presence(target, PRESENT)
            if self.presence[preferred] == MISSING and self.presence[alternative] == MISSING:
                changed |= self.set_presence(target, MISSING)
            if self.presence[target] == MISSING:
                changed |= self.set_presence(preferred, MISSING)
                changed |= self.set_presence(alternative, MISSING)
            if self.presence[target] == PRESENT:
                if self.presence[preferred] == MISSING:
                    changed |= self.set_presence(alternative, PRESENT)
                if self.presence[alternative] == MISSING and self.presence[preferred] == UNKNOWN:
                    changed |= self.set_presence(preferred, PRESENT)
            # value
            if self.presence[preferred] == PRESENT and preferred in self.values:
                changed |= self.set_value(target, self.values[preferred])
            elif (
                self.presence[preferred] == MISSING
                and self.presence[alternative] == PRESENT
                and alternative in self.values
            ):
                changed |= self.set_value(target, self.values[alternative])
        elif isinstance(equation, ClockEquation):
            left = self.eval_clock(equation.left)
            right = self.eval_clock(equation.right)
            if left is not None and right is not None and left != right:
                raise ClockError(
                    f"clock constraint violated: {equation.left!r} = {equation.right!r}"
                )
            if left is not None and right is None:
                changed |= self.force_clock(equation.right, left)
            if right is not None and left is None:
                changed |= self.force_clock(equation.left, right)
        else:
            raise TypeError(f"unsupported primitive equation: {equation!r}")
        return changed

    def propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for equation in self.process.equations:
                changed |= self.propagate_equation(equation)

    # -- final checks --------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify every equation is satisfied by the completed assignment."""
        for equation in self.process.equations:
            if isinstance(equation, ClockEquation):
                left = self.eval_clock(equation.left)
                right = self.eval_clock(equation.right)
                if left is None or right is None or left != right:
                    raise ClockError(
                        f"clock constraint unsatisfied: {equation.left!r} = {equation.right!r}"
                    )
            elif isinstance(equation, SamplingEquation):
                condition_present = self.presence[equation.condition] == PRESENT
                condition_true = condition_present and bool(self.values.get(equation.condition))
                source_present = self.operand_presence(equation.source) == PRESENT
                expected = condition_true and source_present
                actual = self.presence[equation.target] == PRESENT
                if expected != actual:
                    raise ClockError(
                        f"sampling equation for {equation.target!r} unsatisfied"
                    )
            elif isinstance(equation, MergeEquation):
                expected = (
                    self.presence[equation.preferred] == PRESENT
                    or self.presence[equation.alternative] == PRESENT
                )
                actual = self.presence[equation.target] == PRESENT
                if expected != actual:
                    raise ClockError(f"merge equation for {equation.target!r} unsatisfied")
            elif isinstance(equation, (FunctionEquation, DelayEquation)):
                members = [equation.target] + list(equation.read_signals())
                statuses = {self.presence[name] for name in members}
                if PRESENT in statuses and MISSING in statuses:
                    raise ClockError(
                        f"synchronous signals of {equation!r} disagree on presence"
                    )
            if (
                equation.defined_signal() is not None
                and self.presence[equation.defined_signal()] == PRESENT
                and equation.defined_signal() not in self.values
            ):
                raise UnderdeterminedError(
                    f"present signal {equation.defined_signal()!r} has no value"
                )


#: instrumentation: total reactions solved by any interpreter instance.  The
#: compiled engine (:mod:`repro.mc.compiled`) promises *zero* interpreter
#: evaluations on its per-state path; tests pin that promise on this counter.
EVALUATIONS = 0


def evaluation_count() -> int:
    """Total :meth:`SignalInterpreter.step` invocations since the last reset."""
    return EVALUATIONS


def reset_evaluation_count() -> int:
    """Reset the global step counter; returns the value it had."""
    global EVALUATIONS
    previous = EVALUATIONS
    EVALUATIONS = 0
    return previous


class SignalInterpreter:
    """Reaction-by-reaction execution of a normalized process."""

    def __init__(self, process: NormalizedProcess):
        self.process = process
        self.state: Dict[str, object] = {}
        self.reset()

    def reset(self) -> None:
        """Reset every delay register to its initial value."""
        self.state = {
            equation.target: equation.initial
            for equation in self.process.equations
            if isinstance(equation, DelayEquation)
        }

    def snapshot_state(self) -> Dict[str, object]:
        return dict(self.state)

    def restore_state(self, state: Mapping[str, object]) -> None:
        self.state = dict(state)

    def step(
        self,
        inputs: Optional[Mapping[str, object]] = None,
        assume: Optional[Mapping[str, object]] = None,
        default_absent: bool = True,
        commit: bool = True,
    ) -> InstantResult:
        """Compute one reaction.

        ``inputs`` maps input signals to a value or to :data:`ABSENT`.  Input
        signals not mentioned are left unknown (and completed by absence when
        ``default_absent`` is true).  ``assume`` adds presence/value
        assumptions on arbitrary signals, which is how a simulation driver
        activates an internal master clock.  When ``commit`` is false the
        delay registers are left untouched (used for exploration).
        """
        global EVALUATIONS
        EVALUATIONS += 1
        solver = _InstantSolver(self.process, self.state)
        for name, value in (inputs or {}).items():
            if name not in solver.presence:
                raise KeyError(f"unknown signal {name!r}")
            if value is ABSENT:
                solver.set_presence(name, MISSING)
            else:
                solver.set_value(name, value)
        for name, value in (assume or {}).items():
            if name not in solver.presence:
                raise KeyError(f"unknown signal {name!r}")
            if value is ABSENT:
                solver.set_presence(name, MISSING)
            elif value is TICK:
                solver.set_presence(name, PRESENT)
            else:
                solver.set_value(name, value)
        solver.propagate()

        if default_absent:
            for name, status in solver.presence.items():
                if status == UNKNOWN:
                    solver.presence[name] = MISSING
            solver.propagate()

        unknown = [name for name, status in solver.presence.items() if status == UNKNOWN]
        if unknown:
            raise UnderdeterminedError(
                f"presence of signals {sorted(unknown)} cannot be determined"
            )
        solver.check_consistency()

        presence = {name: status == PRESENT for name, status in solver.presence.items()}
        values = dict(solver.values)
        reaction = Reaction(
            self.process.all_signals(),
            {name: values[name] for name, is_present in presence.items() if is_present},
        )
        if commit:
            for equation in self.process.equations:
                if isinstance(equation, DelayEquation) and presence[equation.source]:
                    self.state[equation.target] = values[equation.source]
        return InstantResult(presence=presence, values=values, reaction=reaction)

    def try_step(
        self,
        inputs: Optional[Mapping[str, object]] = None,
        assume: Optional[Mapping[str, object]] = None,
        default_absent: bool = True,
        commit: bool = False,
    ) -> Optional[InstantResult]:
        """Like :meth:`step` but returns ``None`` instead of raising on failure."""
        saved = self.snapshot_state()
        try:
            return self.step(inputs, assume, default_absent, commit)
        except (ClockError, UnderdeterminedError):
            self.restore_state(saved)
            return None
