"""The serving layer: content-addressed designs, persisted artifacts, one scheduler.

The paper's pipeline (analyze → check weak endochrony / isochrony → compile)
is fast per query and batchable, but every caller of the :mod:`repro.api`
facade still pays full recompilation and holds its own caches.  This package
adds the long-lived layer the ROADMAP's north star asks for:

* :class:`~repro.service.registry.DesignRegistry` — designs are
  content-addressed by the SHA-256 of their canonical printed source
  (:func:`repro.lang.printer.canonical_digest`), so two clients submitting
  the same design — however they built it — hit the same entry;
* :class:`~repro.service.store.ArtifactStore` — expensive intermediates
  (compiled BDD step relations, per-process analysis summaries) are
  persisted on disk under the same digests and reloaded in linear time,
  across service restarts and across worker processes;
* :class:`~repro.service.scheduler.VerificationService` — an asyncio
  request scheduler with request coalescing (identical in-flight
  ``(digest, prop, method)`` queries share one computation), an LRU verdict
  cache, and a bounded worker-pool backend (in-process threads or a process
  pool reusing the :mod:`repro.api.parallel` worker pattern);
* :class:`~repro.service.client.ServiceClient` and
  ``python -m repro.service`` — a JSON-lines protocol over a local Unix
  socket plus the matching CLI (``serve`` / ``submit`` / ``query`` /
  ``stats`` / ``digest``), also installed as the ``repro-serve`` script;
* a fault-tolerance layer with a hard invariant — under any injected
  fault, a query returns either the exact fault-free verdict or a typed
  :class:`~repro.service.errors.ServiceError` subclass: checksummed,
  self-quarantining store objects, worker-crash recovery, per-query
  deadlines, bounded client retries, and admission control, all
  exercised deterministically by :class:`~repro.service.faults.FaultPlan`
  (``REPRO_FAULT_PLAN``) and pinned by ``tests/test_chaos.py``.

Quickstart (programmatic, no socket)::

    import asyncio
    from repro.service import ArtifactStore, VerificationService

    service = VerificationService(store=ArtifactStore("./artifacts"))
    digest = service.register(source_text)
    verdict = asyncio.run(service.verify(digest, "non-blocking"))
    assert verdict["holds"]
"""

from repro.service.errors import (
    BackendCrashed,
    DeadlineExceeded,
    QueryFailed,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
    TransportError,
)
from repro.service.faults import FaultInjected, FaultPlan
from repro.service.registry import DesignRegistry
from repro.service.store import ArtifactStore
from repro.service.scheduler import (
    InlineBackend,
    ProcessPoolBackend,
    VerificationService,
)
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

__all__ = [
    "ArtifactStore",
    "BackendCrashed",
    "DeadlineExceeded",
    "DesignRegistry",
    "FaultInjected",
    "FaultPlan",
    "InlineBackend",
    "ProcessPoolBackend",
    "QueryFailed",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceUnavailable",
    "TransportError",
    "VerificationService",
]
