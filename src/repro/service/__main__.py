"""``python -m repro.service`` / ``repro-serve`` — the service CLI.

Subcommands::

    serve   --socket PATH [--store DIR] [--backend inline|process]
            [--workers N] [--cache-size N] [--source FILE ...]
            [--trace] [--trace-out FILE] [--slow-query-threshold SECONDS]
    submit  --socket PATH --source FILE --prop P [--method M] [--max-states N]
    query   --socket PATH --digest D    --prop P [--method M] [--max-states N]
    stats   --socket PATH [--format table|json|prom]
    metrics --socket PATH [--format table|json|prom]
    digest  --source FILE               (offline: print the content digest)

``serve`` runs until interrupted (or until a client sends ``shutdown``);
``submit`` registers a source file and verifies in one round trip; ``query``
addresses an already-registered design by digest; ``stats`` reports the
historical nested counters (``.artifacts.stages`` — hits / store hits /
computed / invalidated per pipeline stage); ``metrics`` serves the unified
``repro_*`` registry snapshot.  Both share one formatter: ``--format json``
(the default; one object per line, composes with ``jq``), ``--format
table`` (aligned two-column text) or ``--format prom`` (Prometheus text
exposition — for ``stats`` the nested dict is flattened to untyped gauges,
for ``metrics`` it is the real typed exposition).

``serve --trace`` enables span tracing for the served process (equivalent
to ``REPRO_TRACE=1``); ``--trace-out FILE`` writes the collected spans as
Chrome trace-event JSON on shutdown (open in Perfetto or
``chrome://tracing``); ``--slow-query-threshold`` logs computed queries
slower than the threshold into the scheduler's slow-query log (visible
under ``stats``'s ``slow_queries``).

A server that cannot be reached (absent socket, nothing listening) exits 1
with a one-line hint on stderr after the client's bounded retries
(``--retries``); typed server-side failures exit 2 with the error as JSON.
``serve`` honors ``REPRO_FAULT_PLAN`` (see :mod:`repro.service.faults`),
wiring one deterministic fault plan through the store and the backend —
the chaos harness's entry point for a served process.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.obs import export as obs_export
from repro.obs import trace as obs_trace
from repro.service.client import ServiceClient
from repro.service.errors import ServiceError, ServiceUnavailable
from repro.service.faults import FaultPlan
from repro.service.scheduler import (
    InlineBackend,
    ProcessPoolBackend,
    VerificationService,
)
from repro.service.server import ServiceServer
from repro.service.store import ArtifactStore


def _emit(payload: object) -> None:
    json.dump(payload, sys.stdout)
    sys.stdout.write("\n")


def _options(arguments: argparse.Namespace) -> dict:
    options = {}
    if arguments.max_states is not None:
        options["max_states"] = arguments.max_states
    return options


def _client(arguments: argparse.Namespace) -> ServiceClient:
    return ServiceClient(arguments.socket, retries=arguments.retries)


def _serve(arguments: argparse.Namespace) -> int:
    # --trace is the CLI spelling of REPRO_TRACE=1; either enables the
    # process-wide tracer before any service object is built
    obs_trace.configure_from_env()
    if getattr(arguments, "trace", False):
        obs_trace.configure(enabled=True)
    fault_plan = FaultPlan.from_env()
    store = (
        ArtifactStore(arguments.store, fault_plan=fault_plan)
        if arguments.store
        else None
    )
    if arguments.backend == "process":
        backend = ProcessPoolBackend(
            workers=arguments.workers,
            store_root=arguments.store,
            fault_plan=fault_plan,
        )
    else:
        backend = InlineBackend(workers=arguments.workers, fault_plan=fault_plan)
    service = VerificationService(
        store=store,
        backend=backend,
        cache_size=arguments.cache_size,
        max_inflight=arguments.max_inflight,
        max_queue=arguments.max_queue,
        slow_query_threshold=arguments.slow_query_threshold,
    )
    if fault_plan is not None:
        _emit({"fault_plan": fault_plan.stats()})
    for source in arguments.source or []:
        digest = service.register(Path(source).read_text(encoding="utf-8"))
        _emit({"registered": source, "digest": digest})
    server = ServiceServer(service, arguments.socket)
    _emit(
        {
            "serving": arguments.socket,
            "backend": backend.describe(),
            "tracing": obs_trace.enabled(),
        }
    )
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        if arguments.trace_out and obs_trace.enabled():
            spans = obs_trace.get_tracer().spans
            obs_export.write_chrome_trace(spans, arguments.trace_out)
            _emit({"trace_out": arguments.trace_out, "spans": len(spans)})
    return 0


def _submit(arguments: argparse.Namespace) -> int:
    client = _client(arguments)
    source = Path(arguments.source).read_text(encoding="utf-8")
    digest = client.register(source)
    verdict = client.verify(
        digest=digest,
        prop=arguments.prop,
        method=arguments.method,
        deadline=arguments.deadline,
        **_options(arguments),
    )
    _emit(verdict)
    return 0 if verdict.get("holds") else 1


def _query(arguments: argparse.Namespace) -> int:
    verdict = _client(arguments).verify(
        digest=arguments.digest,
        prop=arguments.prop,
        method=arguments.method,
        deadline=arguments.deadline,
        **_options(arguments),
    )
    _emit(verdict)
    return 0 if verdict.get("holds") else 1


def _render_stats(payload: dict, format: str) -> None:
    """The shared stats/metrics formatter (nested-dict flavor)."""
    if format == "json":
        _emit(payload)
    elif format == "table":
        sys.stdout.write(obs_export.format_table(obs_export.flatten_stats(payload)))
    else:  # prom: a flattened untyped-gauge rendering of the nested dict
        for key, value in obs_export.flatten_stats(payload):
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                name = "repro_stats_" + "".join(
                    ch if ch.isalnum() else "_" for ch in key
                )
                sys.stdout.write(f"{name} {value}\n")


def _stats(arguments: argparse.Namespace) -> int:
    _render_stats(_client(arguments).stats(), arguments.format)
    return 0


def _metrics(arguments: argparse.Namespace) -> int:
    snapshot = _client(arguments).metrics()
    if arguments.format == "json":
        _emit(snapshot)
    elif arguments.format == "table":
        sys.stdout.write(
            obs_export.format_table(obs_export.snapshot_rows(snapshot))
        )
    else:
        sys.stdout.write(obs_export.to_prometheus(snapshot))
    return 0


def _digest(arguments: argparse.Namespace) -> int:
    from repro.api.session import Design

    design = Design.from_source(Path(arguments.source).read_text(encoding="utf-8"))
    _emit({"design": design.name, "digest": design.digest()})
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Concurrent verification service over a content-addressed artifact store",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the service on a Unix socket")
    serve.add_argument("--socket", required=True, help="Unix socket path to bind")
    serve.add_argument("--store", help="artifact store directory (omit for in-memory only)")
    serve.add_argument(
        "--backend", choices=("inline", "process"), default="inline",
        help="inline thread pool (shared memos) or process pool (parallel CPU)",
    )
    serve.add_argument("--workers", type=int, default=1, help="worker pool size")
    serve.add_argument("--cache-size", type=int, default=1024, help="LRU verdict cache entries")
    serve.add_argument(
        "--source", action="append", help="Signal source file(s) to pre-register"
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None,
        help="admission control: distinct in-flight computations before "
             "queries are rejected as overloaded (default: unbounded)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=0,
        help="extra in-flight computations admitted beyond --max-inflight",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="enable span tracing for the served process (= REPRO_TRACE=1)",
    )
    serve.add_argument(
        "--trace-out", default=None,
        help="write collected spans as Chrome trace-event JSON on shutdown",
    )
    serve.add_argument(
        "--slow-query-threshold", type=float, default=0.0,
        help="log computed queries slower than this many seconds "
             "(0 = disabled; see stats .slow_queries)",
    )
    serve.set_defaults(handler=_serve)

    def _query_arguments(command: argparse.ArgumentParser) -> None:
        command.add_argument("--socket", required=True)
        command.add_argument("--prop", required=True, help="property to verify")
        command.add_argument("--method", default="auto")
        command.add_argument("--max-states", type=int, default=None)
        command.add_argument(
            "--deadline", type=float, default=None,
            help="per-query deadline in seconds (typed deadline-exceeded error)",
        )
        command.add_argument(
            "--retries", type=int, default=2,
            help="transport retries before giving up (exponential backoff)",
        )

    submit = commands.add_parser("submit", help="register a source file and verify it")
    submit.add_argument("--source", required=True, help="Signal source file")
    _query_arguments(submit)
    submit.set_defaults(handler=_submit)

    query = commands.add_parser("query", help="verify an already-registered digest")
    query.add_argument("--digest", required=True)
    _query_arguments(query)
    query.set_defaults(handler=_query)

    def _report_arguments(command: argparse.ArgumentParser) -> None:
        command.add_argument("--socket", required=True)
        command.add_argument(
            "--retries", type=int, default=2,
            help="transport retries before giving up (exponential backoff)",
        )
        command.add_argument(
            "--format", choices=("json", "table", "prom"), default="json",
            help="output format (shared by stats and metrics)",
        )

    stats = commands.add_parser(
        "stats", help="print service counters (incl. per-stage artifact-graph counters)"
    )
    _report_arguments(stats)
    stats.set_defaults(handler=_stats)

    metrics = commands.add_parser(
        "metrics",
        help="print the unified repro_* metrics snapshot (json/table/prom)",
    )
    _report_arguments(metrics)
    metrics.set_defaults(handler=_metrics)

    digest = commands.add_parser("digest", help="print a source file's content digest")
    digest.add_argument("--source", required=True)
    digest.set_defaults(handler=_digest)
    return parser


def main(argv=None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ServiceUnavailable as error:
        print(
            f"repro-serve: cannot reach {arguments.socket} — is the server "
            f"running? ({error})",
            file=sys.stderr,
        )
        return 1
    except ServiceError as error:
        _emit({"error": str(error), "code": error.code})
        return 2
    except FileNotFoundError as error:
        _emit({"error": str(error)})
        return 2


if __name__ == "__main__":
    sys.exit(main())
