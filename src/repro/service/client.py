"""A small synchronous client for the service's JSON-lines socket protocol.

Each request opens a fresh connection (the protocol is stateless and local,
so connection reuse buys nothing worth the bookkeeping), sends one JSON
line and reads one JSON line back.

**Failure behavior.**  Every operation of the protocol is idempotent
(verification of a content-addressed design is deterministic, registration
is content-addressed, stats are reads), so transport-level failures —
connection refused, missing socket, reset, a truncated or garbled response
— are retried with exponential backoff and *seeded* jitter (an explicit
``jitter_seed``, never shared :mod:`random` state, so retry schedules are
reproducible).  Exhausted retries raise
:class:`~repro.service.errors.ServiceUnavailable` naming the operation and
the socket path.  Server-side failures are **not** retried: an
``{"ok": false}`` response carries a ``code`` that maps back to the typed
:class:`~repro.service.errors.ServiceError` hierarchy
(:class:`~repro.service.errors.DeadlineExceeded`,
:class:`~repro.service.errors.ServiceOverloaded` with its ``retry_after``
hint, ...), exactly as the in-process scheduler raises them.

An optional :class:`~repro.service.faults.FaultPlan` injects connection
refusals and truncated responses *below* the retry layer, so the chaos
suite exercises the same recovery code a flaky network would.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from random import Random
from typing import Dict, Optional, Union

from repro.obs import trace as obs_trace
from repro.service.errors import (
    ServiceError,
    ServiceUnavailable,
    TransportError,
    error_from_code,
)
from repro.service.faults import FaultPlan

__all__ = ["ServiceClient", "ServiceError"]

#: transport failures worth a retry; server-side typed errors are not here
_RETRYABLE = (
    ConnectionError,  # refused, reset, aborted, broken pipe
    FileNotFoundError,  # the socket path does not exist (server not up yet)
    TimeoutError,  # socket.timeout is an alias since 3.10
    InterruptedError,
    TransportError,  # truncated / garbled / empty response
)


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ServiceServer` over its socket.

    ``retries`` counts *additional* attempts after the first; attempt ``n``
    sleeps ``backoff * 2**n`` (capped at ``backoff_cap``) plus uniform
    seeded jitter of up to the same amount before retrying.
    """

    def __init__(
        self,
        socket_path: Union[str, Path],
        timeout: float = 120.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        jitter_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.fault_plan = fault_plan
        self._jitter = Random(jitter_seed)
        #: requests issued through :meth:`request`
        self.requests = 0
        #: transport failures that triggered a retry (observability)
        self.retried = 0

    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff * (2 ** attempt), self.backoff_cap)
        return base + self._jitter.uniform(0.0, base)

    def _attempt(self, payload: Dict[str, object], op: str) -> Dict[str, object]:
        """One connect → send → receive → parse round trip."""
        if self.fault_plan is not None and self.fault_plan.connect_fault():
            raise ConnectionRefusedError(
                f"injected connection refusal to {self.socket_path}"
            )
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
            connection.settimeout(self.timeout)
            connection.connect(self.socket_path)
            connection.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            chunks = []
            while True:
                chunk = connection.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        data = b"".join(chunks)
        if self.fault_plan is not None:
            data = self.fault_plan.response_fault(data)
        if not data:
            raise TransportError(
                f"connection closed with no response to {op!r} on {self.socket_path}"
            )
        try:
            response = json.loads(data.decode("utf-8"))
        except ValueError as error:
            raise TransportError(
                f"truncated or garbled response to {op!r} on {self.socket_path}: "
                f"{error}"
            ) from error
        if not response.get("ok"):
            raise error_from_code(
                response.get("code"),
                str(response.get("error", "unknown server error")),
                retry_after=response.get("retry_after"),
            )
        return response.get("result", {})

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One round trip with bounded retries; returns the ``result``.

        Raises the typed :class:`ServiceError` subclass the server named, or
        :class:`ServiceUnavailable` when every attempt failed in transport.
        """
        op = str(payload.get("op", "request"))
        self.requests += 1
        with obs_trace.span("client.request", op=op) as request_span:
            if request_span is not obs_trace.NULL_SPAN:
                # the propagation handoff: the traceparent rides the JSON
                # payload; the server parents its span under this one
                payload = dict(payload)
                payload["traceparent"] = request_span.context.to_traceparent()
            last: Optional[BaseException] = None
            attempts = self.retries + 1
            for attempt in range(attempts):
                try:
                    return self._attempt(payload, op)
                except _RETRYABLE as error:
                    last = error
                    if attempt + 1 < attempts:
                        self.retried += 1
                        delay = self._backoff_delay(attempt)
                        request_span.add_event(
                            "client.retry",
                            attempt=attempt + 1,
                            error=type(error).__name__,
                            backoff=round(delay, 4),
                        )
                        time.sleep(delay)
            request_span.set_tag("outcome", "unavailable")
            raise ServiceUnavailable(
                f"{op!r} request to {self.socket_path} failed after {attempts} "
                f"attempt(s): {type(last).__name__}: {last}"
            ) from last

    # -- operations -----------------------------------------------------------------
    def ping(self) -> bool:
        self.request({"op": "ping"})
        return True

    def register(self, source: str, name: Optional[str] = None) -> str:
        result = self.request({"op": "register", "source": source, "name": name})
        return str(result["digest"])

    def verify(
        self,
        digest: Optional[str] = None,
        source: Optional[str] = None,
        prop: str = "weak-endochrony",
        method: str = "auto",
        deadline: Optional[float] = None,
        **options: object,
    ) -> Dict[str, object]:
        """A property query by digest or by source; returns the verdict dict.

        ``deadline`` (seconds) travels with the request: the server answers
        a typed ``deadline-exceeded`` error when it expires, without
        cancelling the shared computation."""
        payload: Dict[str, object] = {
            "op": "verify",
            "prop": prop,
            "method": method,
            "options": options,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        if digest:
            payload["digest"] = digest
        elif source:
            payload["source"] = source
        else:
            raise ValueError("verify needs a digest or a source")
        return self.request(payload)

    def describe(self, digest: str) -> Dict[str, object]:
        return self.request({"op": "describe", "digest": digest})

    def stats(self) -> Dict[str, object]:
        """The server's nested stats dict (deprecated key shapes preserved),
        with this client's own transport counters under ``"client"``."""
        stats = self.request({"op": "stats"})
        stats["client"] = self.local_stats()
        return stats

    def metrics(self) -> Dict[str, object]:
        """The server's unified metrics snapshot (``repro_*`` families)."""
        return self.request({"op": "metrics"})

    def local_stats(self) -> Dict[str, object]:
        """This client's own counters (no round trip)."""
        return {"requests": self.requests, "retried": self.retried}

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
