"""A small synchronous client for the service's JSON-lines socket protocol.

Each request opens a fresh connection (the protocol is stateless and local,
so connection reuse buys nothing worth the bookkeeping), sends one JSON
line and reads one JSON line back.  Server-side failures surface as
:class:`ServiceError` with the server's message.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Dict, Optional, Union


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false}``."""


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ServiceServer` over its socket."""

    def __init__(self, socket_path: Union[str, Path], timeout: float = 120.0):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One round trip; returns the ``result`` or raises :class:`ServiceError`."""
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
            connection.settimeout(self.timeout)
            connection.connect(self.socket_path)
            connection.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            chunks = []
            while True:
                chunk = connection.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        if not chunks:
            raise ServiceError("connection closed without a response")
        response = json.loads(b"".join(chunks).decode("utf-8"))
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown server error")))
        return response.get("result", {})

    # -- operations -----------------------------------------------------------------
    def ping(self) -> bool:
        self.request({"op": "ping"})
        return True

    def register(self, source: str, name: Optional[str] = None) -> str:
        result = self.request({"op": "register", "source": source, "name": name})
        return str(result["digest"])

    def verify(
        self,
        digest: Optional[str] = None,
        source: Optional[str] = None,
        prop: str = "weak-endochrony",
        method: str = "auto",
        **options: object,
    ) -> Dict[str, object]:
        """A property query by digest or by source; returns the verdict dict."""
        payload: Dict[str, object] = {
            "op": "verify",
            "prop": prop,
            "method": method,
            "options": options,
        }
        if digest:
            payload["digest"] = digest
        elif source:
            payload["source"] = source
        else:
            raise ValueError("verify needs a digest or a source")
        return self.request(payload)

    def describe(self, digest: str) -> Dict[str, object]:
        return self.request({"op": "describe", "digest": digest})

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
