"""The typed error vocabulary of the serving layer.

Every failure a caller of the service can observe — programmatically or
over the socket — is a :class:`ServiceError` subclass with a stable
``code``.  The invariant the chaos suite (``tests/test_chaos.py``) pins:
under any injected fault, a query returns either the exact fault-free
verdict or one of these typed errors — never a raw traceback, never a hung
client, never a poisoned store.

Over the JSON-lines protocol the code travels as the ``code`` field of an
``{"ok": false}`` response; :func:`error_from_code` rebuilds the matching
subclass on the client side, so ``except DeadlineExceeded:`` works the same
against an in-process :class:`~repro.service.scheduler.VerificationService`
and against a remote server.
"""

from __future__ import annotations

from typing import Dict, Optional, Type


class ServiceError(RuntimeError):
    """Base of every typed serving-layer failure (and the generic wire error).

    ``retry_after``, when set, is the server's hint (in seconds) for when a
    retry is worth attempting — carried by :class:`ServiceOverloaded`
    rejections.
    """

    code = "error"

    def __init__(self, message: str, *, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class TransportError(ServiceError):
    """The socket conversation broke: truncated/garbled response, reset,
    connection closed mid-response.  Retryable — every operation of the
    protocol is idempotent."""

    code = "transport"


class ServiceUnavailable(TransportError):
    """The client exhausted its retries without completing one round trip
    (connection refused, missing socket, repeated transport failures)."""

    code = "unavailable"


class DeadlineExceeded(ServiceError):
    """The caller's deadline expired before the verdict was ready.

    The shared in-flight computation is *not* cancelled — other riders
    coalesced onto it (and the verdict cache) still get the answer."""

    code = "deadline-exceeded"


class ServiceOverloaded(ServiceError):
    """Admission control rejected the query: the in-flight computation and
    queue bounds are full.  ``retry_after`` carries the backoff hint."""

    code = "overloaded"


class BackendCrashed(ServiceError):
    """The worker pool died repeatedly while computing this query — the
    bounded rebuild/re-dispatch recovery was exhausted."""

    code = "backend-crashed"


class QueryFailed(ServiceError):
    """The computation itself raised: the underlying exception's type and
    message, wrapped so callers can rely on the typed hierarchy."""

    code = "query-failed"


#: wire ``code`` → exception class, for the client-side rebuild
ERROR_CODES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        TransportError,
        ServiceUnavailable,
        DeadlineExceeded,
        ServiceOverloaded,
        BackendCrashed,
        QueryFailed,
    )
}


def error_from_code(
    code: Optional[object], message: str, *, retry_after: Optional[object] = None
) -> ServiceError:
    """The typed exception for a wire error ``code`` (generic when unknown)."""
    cls = ERROR_CODES.get(str(code), ServiceError) if code is not None else ServiceError
    return cls(
        message,
        retry_after=float(retry_after) if retry_after is not None else None,
    )
