"""Deterministic, seeded fault injection for the serving stack.

A :class:`FaultPlan` decides — from an explicit seed, never from wall-clock
time or the shared :mod:`random` module state — whether each passage
through one of the stack's real fault boundaries fails, and how:

=============  ==================================================================
``store_read``   artifact-store reads: ``oserror`` (the read raises),
                 ``torn`` (the text is truncated mid-object),
                 ``bitflip`` (one byte of the payload is corrupted)
``store_write``  artifact-store writes: ``oserror`` (the write fails and is
                 absorbed as a cache miss), ``torn`` (a truncated object
                 lands on disk — the quarantine/heal path's input)
``exec``         backend execution: ``exception`` (the worker raises
                 :class:`FaultInjected`), ``crash`` (a pool worker process
                 dies with ``os._exit`` → ``BrokenProcessPool``; inline
                 threads degrade to an exception), ``latency`` (the worker
                 sleeps — the deadline machinery's input)
``connect``      client transport: the connection attempt is refused
``response``     client transport: the response bytes are truncated, as if
                 the server closed mid-response or a line arrived partially
=============  ==================================================================

Every site draws from its **own** ``random.Random`` seeded by
``(seed, site)``, so the fault schedule at one site is independent of how
often the other sites are exercised — the property that makes chaos runs
reproducible under ``REPRO_FAULT_PLAN`` (see :meth:`FaultPlan.from_env`)::

    REPRO_FAULT_PLAN="seed=7,store_read=0.3,exec.latency=0.5,latency=0.05"

Keys are site names (the rate is spread over the site's modes) or
``site.mode`` (the rate goes to that mode alone); ``seed`` and ``latency``
(the injected sleep, seconds) are scalars.  Injection counters are keyed
``site.mode`` and surfaced through the owning component's ``stats()``.

The plan is *advice*, not mechanism: the store, the backends and the client
each consult their plan at their own boundary and exercise the exact same
recovery code a real fault would — which is the point.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from random import Random
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs import trace as obs_trace


class FaultInjected(RuntimeError):
    """The error raised by an injected ``exec.exception`` fault — a stand-in
    for any unexpected exception escaping a verification worker."""


#: site → the modes a bare-site rate is spread over
SITE_MODES: Dict[str, Tuple[str, ...]] = {
    "store_read": ("oserror", "torn", "bitflip"),
    "store_write": ("oserror", "torn"),
    "exec": ("exception", "crash", "latency"),
    "connect": ("refused",),
    "response": ("truncate",),
}

ENV_VAR = "REPRO_FAULT_PLAN"


class FaultPlan:
    """A seeded schedule of injected faults over the stack's fault sites.

    ``rates`` maps ``"site"`` (spread over the site's modes) or
    ``"site.mode"`` to a per-passage probability; sites left out never
    fire.  One plan instance may be shared by the store, the backend and
    the client of one deployment — each site's draws stay independent.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[str, float]] = None,
        latency: float = 0.02,
        spec: Optional[str] = None,
    ):
        self.seed = int(seed)
        self.latency = float(latency)
        self.spec = spec
        self.injected: Counter = Counter()
        self._lock = threading.Lock()
        #: site → [(mode, rate)], validated
        self._rates: Dict[str, List[Tuple[str, float]]] = {
            site: [] for site in SITE_MODES
        }
        for key, rate in (rates or {}).items():
            site, _, mode = key.partition(".")
            if site not in SITE_MODES:
                raise ValueError(
                    f"unknown fault site {site!r} (valid: {sorted(SITE_MODES)})"
                )
            rate = float(rate)
            if mode:
                if mode not in SITE_MODES[site]:
                    raise ValueError(
                        f"unknown mode {mode!r} for fault site {site!r} "
                        f"(valid: {SITE_MODES[site]})"
                    )
                self._rates[site].append((mode, rate))
            else:
                modes = SITE_MODES[site]
                self._rates[site].extend(
                    (each, rate / len(modes)) for each in modes
                )
        # one independent deterministic stream per site: string seeding is
        # stable across processes and PYTHONHASHSEED values
        self._rngs: Dict[str, Random] = {
            site: Random(f"{self.seed}:{site}") for site in SITE_MODES
        }

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"seed=7,store_read=0.3,exec.latency=0.5,latency=0.05"``."""
        seed, latency, rates = 0, 0.02, {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not value:
                raise ValueError(f"fault-plan entry {part!r} needs key=value")
            if key == "seed":
                seed = int(value)
            elif key == "latency":
                latency = float(value)
            else:
                rates[key] = float(value)
        return cls(seed=seed, rates=rates, latency=latency, spec=spec)

    @classmethod
    def from_env(cls, variable: str = ENV_VAR) -> Optional["FaultPlan"]:
        """The plan selected by the environment, or ``None`` when unset."""
        spec = os.environ.get(variable, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    # -- the deterministic draw -------------------------------------------------------
    def _draw(self, site: str) -> Optional[str]:
        """The mode injected at this passage through ``site`` (usually None)."""
        modes = self._rates[site]
        if not modes:
            return None
        with self._lock:
            rng = self._rngs[site]
            roll = rng.random()
            cumulative = 0.0
            for mode, rate in modes:
                cumulative += rate
                if roll < cumulative:
                    self.injected[f"{site}.{mode}"] += 1
                    if obs_trace.TRACING:
                        obs_trace.add_event("fault.injected", site=site, mode=mode)
                    return mode
            return None

    def _rng(self, site: str) -> Random:
        return self._rngs[site]

    # -- site APIs (called by the store / backends / client) ---------------------------
    def store_read(self, text: str) -> str:
        """Possibly-corrupted read: may raise OSError, truncate, or flip a byte."""
        mode = self._draw("store_read")
        if mode is None or len(text) < 2:
            return text
        if mode == "oserror":
            raise OSError("injected artifact read failure")
        with self._lock:
            position = self._rng("store_read").randrange(1, len(text))
        if mode == "torn":
            return text[:position]
        # bitflip: replace one byte with a different printable one
        flipped = chr((ord(text[position]) + 1 - 32) % 95 + 32)
        return text[:position] + flipped + text[position + 1 :]

    def store_write(self) -> Optional[Tuple[str, float]]:
        """``None``, ``("oserror", 0)`` or ``("torn", fraction_kept)``."""
        mode = self._draw("store_write")
        if mode is None:
            return None
        if mode == "oserror":
            return ("oserror", 0.0)
        with self._lock:
            fraction = 0.1 + 0.8 * self._rng("store_write").random()
        return ("torn", fraction)

    def exec_fault(self) -> Optional[Tuple[str, object]]:
        """``None``, ``("exception", msg)``, ``("crash", msg)`` or
        ``("latency", seconds)`` for the next backend dispatch."""
        mode = self._draw("exec")
        if mode is None:
            return None
        if mode == "latency":
            return ("latency", self.latency)
        if mode == "crash":
            return ("crash", "injected worker-process crash")
        return ("exception", "injected verification-worker failure")

    def connect_fault(self) -> bool:
        """Whether this connection attempt is refused."""
        return self._draw("connect") is not None

    def response_fault(self, data: bytes) -> bytes:
        """The response bytes, possibly truncated mid-line (may be empty)."""
        mode = self._draw("response")
        if mode is None or not data:
            return data
        with self._lock:
            keep = self._rng("response").randrange(0, len(data))
        return data[:keep]

    # -- reporting -----------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "spec": self.spec,
            "injected": dict(sorted(self.injected.items())),
            "total_injected": sum(self.injected.values()),
        }


def execute_worker_fault(
    fault: Optional[Tuple[str, object]], allow_crash: bool = False
) -> None:
    """Carry out an :meth:`FaultPlan.exec_fault` decision inside a worker.

    Shared by the inline thread workers and the process-pool workers (where
    the decision crosses the process boundary as part of the task, keeping
    the schedule deterministic regardless of worker scheduling).  A thread
    cannot crash alone, so ``crash`` degrades to :class:`FaultInjected`
    unless ``allow_crash`` — in a process-pool worker, where the crash
    becomes a real ``BrokenProcessPool`` for the parent to recover from.
    """
    if fault is None:
        return
    mode, detail = fault
    if mode == "latency":
        import time

        time.sleep(float(detail))  # type: ignore[arg-type]
        return
    if mode == "crash" and allow_crash:
        os._exit(3)
    raise FaultInjected(str(detail))
