"""Content-addressed design registry.

Every design the service knows is keyed by the SHA-256 digest of its
canonical printed source (:func:`repro.lang.printer.canonical_digest`): the
digest is independent of component order, of generated local names and of
how the design was constructed (source text, builder, printed-and-reparsed
source), so two clients submitting "the same" design — byte-identical or
not — resolve to the same registry entry, share one
:class:`~repro.api.session.AnalysisContext` worth of memoized analyses, and
hit the same artifact-store objects.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.api.session import Design, ProcessLike


class DesignRegistry:
    """Digest-keyed designs, deduplicated by canonical content.

    Accepts anything :meth:`register` can turn into a
    :class:`~repro.api.session.Design`: an existing design, Signal source
    text, or an iterable of process-like components.  Registration is
    idempotent — re-registering equivalent content returns the existing
    digest and keeps the existing session (with all its memoized work).

    Live sessions are memory-heavy (each holds an
    :class:`~repro.api.session.AnalysisContext` full of memoized analyses
    and a BDD manager), so the registry keeps at most ``max_designs`` of
    them with least-recently-used eviction.  An evicted digest raises
    ``KeyError`` on lookup — clients re-register (cheap: the expensive
    intermediates live on in the artifact store, so the rebuilt session
    warm-starts from disk).
    """

    def __init__(self, max_designs: int = 512) -> None:
        self.max_designs = max_designs
        self._designs: "OrderedDict[str, Design]" = OrderedDict()
        # seen source text -> digest: repeat by-source submissions (the
        # common client pattern over the socket) skip parse + normalize +
        # canonical print entirely on the hot path.  Bounded on its own
        # (textual variants of one design share a digest but not a key,
        # so this can outgrow the design LRU)
        self._by_source: "OrderedDict[Tuple[str, Optional[str]], str]" = OrderedDict()
        self._max_sources = max(4 * max_designs, 16)
        self.registrations = 0
        self.deduplicated = 0
        self.evicted = 0

    def _evict_beyond_bound(self) -> None:
        while len(self._designs) > self.max_designs:
            digest, _design = self._designs.popitem(last=False)
            for key in [k for k, known in self._by_source.items() if known == digest]:
                del self._by_source[key]
            self.evicted += 1

    def register(
        self,
        design: Union[Design, str, Iterable[ProcessLike]],
        name: Optional[str] = None,
    ) -> str:
        """Add a design (idempotent) and return its content digest."""
        self.registrations += 1
        source_key = (design, name) if isinstance(design, str) else None
        if source_key is not None:
            known = self._by_source.get(source_key)
            if known is not None and known in self._designs:
                self._by_source.move_to_end(source_key)
                self._designs.move_to_end(known)
                self.deduplicated += 1
                return known
        resolved = self._coerce(design, name)
        digest = resolved.digest()
        if digest in self._designs:
            self._designs.move_to_end(digest)
            self.deduplicated += 1
        else:
            self._designs[digest] = resolved
            self._evict_beyond_bound()
        if source_key is not None:
            self._by_source[source_key] = digest
            self._by_source.move_to_end(source_key)
            while len(self._by_source) > self._max_sources:
                self._by_source.popitem(last=False)
        return digest

    @staticmethod
    def _coerce(
        design: Union[Design, str, Iterable[ProcessLike]], name: Optional[str]
    ) -> Design:
        if isinstance(design, Design):
            return design
        if isinstance(design, str):
            return Design.from_source(design, name=name)
        return Design(name=name or "design", components=list(design))

    def digest_of(
        self, design: Union[Design, str, Iterable[ProcessLike]], name: Optional[str] = None
    ) -> str:
        """The content digest a value *would* register under (no side effect)."""
        return self._coerce(design, name).digest()

    def get(self, digest: str) -> Design:
        """The design registered under ``digest`` (KeyError when unknown or
        evicted — re-register to rebuild the session)."""
        try:
            design = self._designs[digest]
        except KeyError:
            raise KeyError(f"no design registered under digest {digest!r}") from None
        self._designs.move_to_end(digest)
        return design

    def __contains__(self, digest: object) -> bool:
        return digest in self._designs

    def __len__(self) -> int:
        return len(self._designs)

    def entries(self) -> List[Tuple[str, Design]]:
        """``(digest, design)`` pairs in registration order."""
        return list(self._designs.items())

    def stats(self) -> Dict[str, int]:
        return {
            "designs": len(self._designs),
            "max_designs": self.max_designs,
            "registrations": self.registrations,
            "deduplicated": self.deduplicated,
            "evicted": self.evicted,
        }
