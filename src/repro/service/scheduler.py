"""The asyncio request scheduler: coalesce, cache, and bound the work.

:class:`VerificationService` multiplexes many concurrent verification
queries over one registry, one artifact store and one bounded worker pool:

* **request coalescing** — identical in-flight ``(design digest, property,
  method, options)`` queries share a single underlying computation; 64
  concurrent submissions of the same query cost exactly one compile/explore
  (``service.computations`` counts the real work, ``service.coalesced`` the
  riders);
* **LRU verdict cache** — completed verdicts (as JSON-safe dictionaries,
  :meth:`repro.api.results.Verdict.to_dict`) are kept up to ``cache_size``
  entries with least-recently-used eviction;
* **bounded backends** — :class:`InlineBackend` runs queries on a small
  thread pool sharing the registry's memoized sessions (the default: one
  worker, zero pickling); :class:`ProcessPoolBackend` shards across worker
  processes, each holding per-digest memoized
  :class:`~repro.api.session.Design` sessions and its own handle on the
  shared artifact store — the process-pool worker pattern of
  :mod:`repro.api.parallel` promoted to a long-lived serving layer.

The scheduler is loop-agnostic: all asyncio state is created lazily inside
the running loop, so one service instance can serve a socket server, a
test's ``asyncio.run`` and the CLI alike.

**Fault tolerance** (the invariant ``tests/test_chaos.py`` pins: correct
verdict or typed error, never a wrong answer, never a hang):

* computation failures surface as :class:`~repro.service.errors.QueryFailed`
  (typed, message-preserving) and are never cached;
* :class:`ProcessPoolBackend` survives worker crashes: a
  ``BrokenProcessPool`` rebuilds the pool once and re-dispatches the query a
  bounded number of times, so coalesced riders don't all die with the
  worker (:class:`~repro.service.errors.BackendCrashed` when exhausted);
* per-query ``deadline=`` raises
  :class:`~repro.service.errors.DeadlineExceeded` without cancelling the
  shared in-flight computation other riders still want;
* admission control (``max_inflight`` + ``max_queue``) rejects overflow
  with a fast :class:`~repro.service.errors.ServiceOverloaded` carrying a
  ``retry_after`` hint, instead of growing in-flight state without bound.
"""

from __future__ import annotations

import asyncio
import copy
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.api.artifacts import COUNTER_FIELDS
from repro.api.session import Design, ProcessLike
from repro.lang.printer import options_fingerprint
from repro.obs import collect as obs_collect
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SlowQueryLog
from repro.service.errors import (
    BackendCrashed,
    DeadlineExceeded,
    QueryFailed,
    ServiceError,
    ServiceOverloaded,
)
from repro.service.faults import FaultPlan, execute_worker_fault
from repro.service.registry import DesignRegistry
from repro.service.store import ArtifactStore

#: a fully-normalized query identity: (digest, prop, method, options repr)
QueryKey = Tuple[str, str, str, str]


def _retrieve_exception(task: "asyncio.Task") -> None:
    """Mark a computation's exception as observed.

    When every waiter on a shared computation timed out (deadlines) or was
    rejected, nobody awaits the task; retrieving the exception here keeps
    asyncio from logging a spurious 'exception was never retrieved'.
    """
    if not task.cancelled():
        task.exception()


def _is_digest(value: str) -> bool:
    if len(value) != 64:
        return False
    try:
        int(value, 16)
        return True
    except ValueError:
        return False


class InlineBackend:
    """Run queries off the event loop, against the shared in-process sessions.

    The queries execute against the registry's shared
    :class:`~repro.api.session.Design` sessions, so every memo (analyses,
    compiled relations, engines, verdict caches) is reused across requests
    with zero serialization.  Those sessions — and the one
    :class:`~repro.bdd.bdd.BDDManager` behind each — are **not**
    thread-safe, so verification itself runs under a lock regardless of the
    pool size: queries leave the event loop free (which is what lets
    concurrent duplicates pile onto one in-flight computation) but execute
    one at a time.  For CPU parallelism use :class:`ProcessPoolBackend`;
    pure-Python BDD work would not parallelize on threads anyway.
    """

    name = "inline"

    def __init__(self, workers: int = 1, fault_plan: Optional[FaultPlan] = None):
        self.workers = workers
        self.fault_plan = fault_plan
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._serialize = threading.Lock()

    def _verify(
        self, design: Design, prop: str, method: str, options: Dict[str, object]
    ):
        with obs_trace.span("backend.exec", backend=self.name, prop=prop):
            if self.fault_plan is not None:
                # a thread cannot crash the process alone: ``crash`` degrades
                # to an injected exception here; ProcessPoolBackend gets the
                # real thing
                execute_worker_fault(self.fault_plan.exec_fault(), allow_crash=False)
            with self._serialize:
                return design.verify(prop, method, **options)

    async def run(
        self, design: Design, digest: str, prop: str, method: str, options: Dict[str, object]
    ) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        # bind: executor threads don't inherit contextvars, so the trace
        # context rides the callable into the worker thread explicitly
        verdict = await loop.run_in_executor(
            self._executor,
            obs_trace.bind(partial(self._verify, design, prop, method, options)),
        )
        return verdict.to_dict()

    async def run_blocking(self, function):
        """Run session-touching work off the loop, under the same lock as
        verification — the shared sessions are not thread-safe."""
        loop = asyncio.get_running_loop()

        def call():
            with self._serialize:
                return function()

        return await loop.run_in_executor(self._executor, call)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def describe(self) -> Dict[str, object]:
        return {"backend": self.name, "workers": self.workers}

    def fault_stats(self) -> Optional[Dict[str, object]]:
        return self.fault_plan.stats() if self.fault_plan is not None else None


# -- process-pool worker state (one per worker process) --------------------------
_WORKER: Dict[str, object] = {}


def _initialize_worker(store_root: Optional[str]) -> None:
    _WORKER["designs"] = {}
    _WORKER["store"] = ArtifactStore(store_root) if store_root else None


#: the reserved verdict key worker spans ship back under (popped — and the
#: spans adopted into the parent's tracer — before the verdict is cached)
TRACE_SHIP_KEY = "_obs_spans"


def _worker_query(task) -> Dict[str, object]:
    """One query in a pool worker: per-digest memoized sessions + shared store.

    ``fault`` is the parent's :meth:`FaultPlan.exec_fault` decision for this
    dispatch — drawn in the parent so the schedule stays deterministic, and
    executed here where a ``crash`` takes the real worker process down.

    ``trace`` is the parent's traceparent (``None`` = tracing off): workers
    are separate processes, so the context crosses in the task payload, the
    worker records spans into its own tracer, and ships them back beside
    the verdict under :data:`TRACE_SHIP_KEY` for the parent to adopt.
    """
    from repro.api.parallel import sanitize_verdict

    digest, components, name, prop, method, options, fault, trace = task
    parent_context = None
    if trace is not None:
        obs_trace.configure(enabled=True)
        obs_trace.get_tracer().drain()  # a prior task's unshipped leftovers
        parent_context = obs_trace.SpanContext.from_traceparent(trace)
    with obs_trace.activate(parent_context):
        with obs_trace.span(
            "worker.exec", backend="process", prop=prop, digest=digest[:12]
        ):
            execute_worker_fault(fault, allow_crash=True)
            designs: Dict[str, Design] = _WORKER["designs"]  # type: ignore[assignment]
            design = designs.get(digest)
            if design is None:
                design = Design(name=name, components=list(components))
                design.context.artifact_cache = _WORKER.get("store")
                designs[digest] = design
            verdict = sanitize_verdict(design.verify(prop, method, **options)).to_dict()
    if trace is not None:
        verdict[TRACE_SHIP_KEY] = obs_trace.get_tracer().drain()
    return verdict


class ProcessPoolBackend:
    """Shard queries over ``workers`` processes, all reading one artifact store.

    Each worker process builds a design at most once per digest and keeps
    its own memoized :class:`~repro.api.session.AnalysisContext` (the
    :mod:`repro.api.parallel` pattern); the shared on-disk artifact store
    means even a worker seeing a design for the first time starts from the
    persisted compiled relation instead of recompiling.  Verdicts come back
    sanitized (reports dropped, unpicklable witnesses stringified), exactly
    as from ``Design.verify_many(parallel=N)``.
    """

    name = "process"

    #: total dispatch attempts per query — the original plus one re-dispatch
    #: after a pool rebuild; a second consecutive crash is a real problem,
    #: surfaced as :class:`BackendCrashed` instead of an unbounded retry loop
    MAX_DISPATCHES = 2

    def __init__(
        self,
        workers: int = 2,
        store_root: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.workers = workers
        self.store_root = str(store_root) if store_root else None
        self.fault_plan = fault_plan
        self._pool = self._make_pool()
        self._pool_lock = threading.Lock()
        #: pools rebuilt after a worker crash (BrokenProcessPool)
        self.pool_rebuilds = 0
        #: queries re-dispatched onto a rebuilt pool
        self.redispatched = 0
        # main-process session work (describe) never runs in the pool, but
        # concurrent calls still share non-thread-safe sessions
        self._local_lock = threading.Lock()

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_initialize_worker,
            initargs=(self.store_root,),
        )

    def _rebuild_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken pool exactly once, however many queries saw it die.

        Every in-flight query against a crashed worker observes the same
        ``BrokenProcessPool``; the identity check under the lock makes the
        first one rebuild and the rest reuse the fresh pool.
        """
        with self._pool_lock:
            if self._pool is broken:
                self._pool = self._make_pool()
                self.pool_rebuilds += 1
        broken.shutdown(wait=False)

    async def run(
        self, design: Design, digest: str, prop: str, method: str, options: Dict[str, object]
    ) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        fault = self.fault_plan.exec_fault() if self.fault_plan is not None else None
        trace = None
        if obs_trace.TRACING:
            context = obs_trace.current_context()
            trace = context.to_traceparent() if context is not None else ""
        base = (digest, tuple(design.components), design.name, prop, method, options)
        for attempt in range(self.MAX_DISPATCHES):
            pool = self._pool
            try:
                with obs_trace.span(
                    "backend.dispatch", backend=self.name, attempt=attempt
                ) as dispatch_span:
                    carried = (
                        dispatch_span.context.to_traceparent()
                        if dispatch_span is not obs_trace.NULL_SPAN
                        else trace
                    )
                    verdict = await loop.run_in_executor(
                        pool, partial(_worker_query, base + (fault, carried))
                    )
                if trace is not None:
                    shipped = verdict.pop(TRACE_SHIP_KEY, None)
                    if shipped:
                        obs_trace.get_tracer().adopt(shipped)
                return verdict
            except BrokenProcessPool as error:
                self._rebuild_pool(pool)
                obs_trace.add_event(
                    "backend.crash", backend=self.name, attempt=attempt
                )
                fault = None  # an injected crash fires once; re-dispatch clean
                if attempt + 1 == self.MAX_DISPATCHES:
                    raise BackendCrashed(
                        f"worker pool died {self.MAX_DISPATCHES} times computing "
                        f"{prop!r} on {digest[:12]}…; giving up after the bounded "
                        "re-dispatch"
                    ) from error
                self.redispatched += 1
                obs_trace.add_event(
                    "backend.redispatch", backend=self.name, attempt=attempt + 1
                )

    async def run_blocking(self, function):
        """Main-process session work, serialized and off the event loop."""
        loop = asyncio.get_running_loop()

        def call():
            with self._local_lock:
                return function()

        return await loop.run_in_executor(None, call)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def describe(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "workers": self.workers,
            "store_root": self.store_root,
            "pool_rebuilds": self.pool_rebuilds,
            "redispatched": self.redispatched,
        }

    def fault_stats(self) -> Optional[Dict[str, object]]:
        return self.fault_plan.stats() if self.fault_plan is not None else None


class VerificationService:
    """One long-lived verification endpoint over a registry, a store, a pool.

    ``register()`` content-addresses a design; ``verify()`` (a coroutine)
    answers a property query as a JSON-safe verdict dictionary, going
    through, in order: the in-memory LRU verdict cache → the in-flight
    table (request coalescing) → the artifact store's persisted verdicts →
    the backend worker pool, whose sessions consult the store's compiled
    relations before compiling anything.  All counters are exposed by
    :meth:`stats` — ``computations`` is the instrumentation the coalescing
    and throughput benchmarks assert on.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        registry: Optional[DesignRegistry] = None,
        backend: Optional[object] = None,
        cache_size: int = 1024,
        max_inflight: Optional[int] = None,
        max_queue: int = 0,
        slow_query_threshold: float = 0.0,
    ):
        self.registry = registry or DesignRegistry()
        self.store = store
        self.backend = backend or InlineBackend()
        self.cache_size = cache_size
        #: the unified observability surface of this service: every legacy
        #: counter below is also scraped into the canonical ``repro_*``
        #: namespace through these collectors (see :meth:`metrics`)
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(obs_collect.service_collector(self))
        if store is not None:
            self.metrics.register_collector(obs_collect.store_collector(store))
        self.metrics.register_collector(
            obs_collect.tracer_collector(obs_trace.get_tracer())
        )
        #: computed queries slower than ``slow_query_threshold`` seconds
        #: (0 = disabled) land here with their trace id and stage breakdown
        self.slow_queries = SlowQueryLog(threshold=slow_query_threshold)
        #: admission control: at most ``max_inflight + max_queue`` *distinct*
        #: computations in flight (``None`` = unbounded — the historical
        #: behavior).  Cache hits and coalesced riders are always admitted;
        #: only a query that would start a new computation can be rejected.
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._cache: "OrderedDict[QueryKey, Dict[str, object]]" = OrderedDict()
        self._inflight: Dict[QueryKey, "asyncio.Task"] = {}
        #: underlying computations actually run (misses everywhere: LRU,
        #: in-flight table, verdict store) — the benchmark instrumentation
        self.computations = 0
        #: queries that joined an identical in-flight computation
        self.coalesced = 0
        self.cache_hits = 0
        self.verdict_store_hits = 0
        self.queries = 0
        #: queries rejected by admission control (typed ServiceOverloaded)
        self.rejected = 0
        #: queries whose caller's deadline expired (typed DeadlineExceeded)
        self.deadline_exceeded = 0
        #: computations that raised (typed QueryFailed / backend errors)
        self.failures = 0
        # EWMA of recent computation durations: the retry_after estimator
        self._ewma_seconds = 0.0
        self._ewma_samples = 0

    # -- registration -------------------------------------------------------------
    def register(
        self,
        design: Union[Design, str, Iterable[ProcessLike]],
        name: Optional[str] = None,
    ) -> str:
        """Content-address a design and hook its session to the artifact store."""
        digest = self.registry.register(design, name=name)
        entry = self.registry.get(digest)
        if self.store is not None and entry.context.artifact_cache is None:
            entry.context.artifact_cache = self.store
        return digest

    def _resolve(self, target: Union[Design, str, Iterable[ProcessLike]]) -> str:
        """A digest for ``target``: look it up when it already is one,
        register it otherwise."""
        if isinstance(target, str) and _is_digest(target):
            if target not in self.registry:
                raise KeyError(f"no design registered under digest {target!r}")
            return target
        return self.register(target)

    # -- the query path -----------------------------------------------------------
    def _retry_after_hint(self) -> float:
        """When a rejected caller should come back: the in-flight backlog
        divided by the worker pool, priced at the recent average compute."""
        average = self._ewma_seconds if self._ewma_samples else 0.5
        workers = max(1, int(getattr(self.backend, "workers", 1) or 1))
        backlog = max(1, len(self._inflight))
        return round(max(0.05, average * backlog / workers), 3)

    async def verify(
        self,
        target: Union[Design, str, Iterable[ProcessLike]],
        prop: str,
        method: str = "auto",
        deadline: Optional[float] = None,
        **options: object,
    ) -> Dict[str, object]:
        """One property query; returns a JSON-safe verdict dictionary.

        ``target`` is a registered digest or anything :meth:`register`
        accepts.  Identical concurrent queries are coalesced onto one
        computation; completed ones are served from the LRU cache.

        ``deadline`` (seconds, relative) bounds how long *this caller*
        waits: expiry raises :class:`DeadlineExceeded` while the shared
        computation runs on for coalesced riders and the caches.  When
        admission control is configured and the in-flight table is full, a
        query that would start a new computation is rejected immediately
        with :class:`ServiceOverloaded` (its ``retry_after`` is the
        backoff hint) — bounded memory beats an unbounded queue.
        """
        from repro.api.backends import canonical_property

        self.queries += 1
        with obs_trace.span("service.verify", prop=prop, method=method) as qspan:
            if isinstance(target, str) and _is_digest(target):
                digest = self._resolve(target)  # a dict lookup: loop-safe
            else:
                # registration parses, normalizes and canonically prints — off
                # the loop, and serialized with verification (shared sessions)
                digest = await self.backend.run_blocking(
                    partial(self.register, target)
                )
            qspan.set_tag("digest", digest[:12])
            key: QueryKey = (
                digest,
                canonical_property(prop),
                method,
                options_fingerprint(options),
            )
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                qspan.set_tag("outcome", "cache_hit")
                return copy.deepcopy(cached)
            task = self._inflight.get(key)
            if task is None:
                bound = self.max_inflight
                if bound is not None and len(self._inflight) >= bound + self.max_queue:
                    self.rejected += 1
                    hint = self._retry_after_hint()
                    qspan.set_tag("outcome", "rejected")
                    raise ServiceOverloaded(
                        f"{len(self._inflight)} computations in flight (limit "
                        f"{bound} + {self.max_queue} queued); retry in ~{hint:g}s",
                        retry_after=hint,
                    )
                qspan.set_tag("outcome", "computed")
                task = asyncio.ensure_future(
                    self._compute(key, digest, prop, method, options)
                )
                # a failing computation whose every waiter timed out must not
                # leave an unretrieved-exception warning behind
                task.add_done_callback(_retrieve_exception)
                self._inflight[key] = task
            else:
                self.coalesced += 1
                qspan.set_tag("outcome", "coalesced")
                qspan.set_tag("coalesced", True)
            # shield: one caller's cancellation must not abort the shared work;
            # deep copy: a caller mutating its verdict must not corrupt the
            # cached entry every other (and future) caller receives
            waiter = asyncio.shield(task)
            if deadline is None:
                return copy.deepcopy(await waiter)
            try:
                return copy.deepcopy(
                    await asyncio.wait_for(waiter, timeout=deadline)
                )
            except asyncio.TimeoutError:
                self.deadline_exceeded += 1
                qspan.set_tag("outcome", "deadline_exceeded")
                raise DeadlineExceeded(
                    f"{prop!r} on {digest[:12]}… exceeded its {deadline:g}s deadline "
                    "(the shared computation continues for other callers)"
                ) from None

    async def _stored_verdict(self, key: QueryKey) -> Optional[Dict[str, object]]:
        """A persisted verdict for this exact query, when the store has one.

        The file read runs in the default executor — disk I/O must not
        stall the event loop (and needs no session lock)."""
        if self.store is None:
            return None
        digest, prop, method, options_key = key
        loop = asyncio.get_running_loop()
        verdict = await loop.run_in_executor(
            None,
            obs_trace.bind(
                partial(self.store.load_verdict, digest, prop, method, options_key)
            ),
        )
        if verdict is not None:
            self.verdict_store_hits += 1
        return verdict

    async def _compute(
        self,
        key: QueryKey,
        digest: str,
        prop: str,
        method: str,
        options: Dict[str, object],
    ) -> Dict[str, object]:
        # ensure_future copied the first caller's context, so this span —
        # and everything below it, store reads included — parents under
        # that caller's service.verify span; coalesced riders' own spans
        # reference the same trace through the shared computation
        compute_span = obs_trace.span(
            "service.compute", prop=prop, method=method, digest=digest[:12]
        )
        try:
            with compute_span as cspan:
                verdict = await self._stored_verdict(key)
                if verdict is not None:
                    cspan.set_tag("outcome", "store_hit")
                else:
                    cspan.set_tag("outcome", "computed")
                    self.computations += 1
                    design = self.registry.get(digest)
                    started = time.perf_counter()
                    try:
                        verdict = dict(
                            await self.backend.run(design, digest, prop, method, dict(options))
                        )
                    except asyncio.CancelledError:
                        raise
                    except ServiceError:
                        self.failures += 1
                        raise
                    except Exception as error:
                        # the correct-or-typed-error invariant: whatever escaped
                        # the backend (a VerificationError, an injected fault, a
                        # pickling problem) reaches callers as one typed class
                        # with the original type and message preserved
                        self.failures += 1
                        raise QueryFailed(f"{type(error).__name__}: {error}") from error
                    elapsed = time.perf_counter() - started
                    self._ewma_seconds = (
                        elapsed
                        if self._ewma_samples == 0
                        else 0.7 * self._ewma_seconds + 0.3 * elapsed
                    )
                    self._ewma_samples += 1
                    if self.slow_queries.enabled:
                        cost = verdict.get("cost") or {}
                        self.slow_queries.observe(
                            elapsed,
                            digest,
                            prop,
                            method,
                            trace_id=cspan.trace_id,
                            stages=cost.get("stages") if isinstance(cost, dict) else None,
                        )
                    verdict["digest"] = digest
                    if self.store is not None:
                        # best-effort: ArtifactStore.put absorbs write failures
                        loop = asyncio.get_running_loop()
                        await loop.run_in_executor(
                            None,
                            obs_trace.bind(
                                partial(
                                    self.store.store_verdict,
                                    key[0], key[1], key[2], key[3], verdict,
                                )
                            ),
                        )
        finally:
            self._inflight.pop(key, None)
        self._cache[key] = verdict
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return verdict

    def verify_blocking(
        self,
        target: Union[Design, str, Iterable[ProcessLike]],
        prop: str,
        method: str = "auto",
        deadline: Optional[float] = None,
        **options: object,
    ) -> Dict[str, object]:
        """Synchronous convenience wrapper: ``asyncio.run(self.verify(...))``."""
        return asyncio.run(
            self.verify(target, prop, method, deadline=deadline, **options)
        )

    # -- analysis artifacts ---------------------------------------------------------
    async def describe(
        self, target: Union[Design, str, Iterable[ProcessLike]]
    ) -> Dict[str, object]:
        """Per-process analysis summaries of a design, served from the store.

        On the first call the composition and component analyses are
        computed — through the backend's ``run_blocking``, so the shared
        sessions are never touched from the event-loop thread nor
        concurrently with a verification — and persisted under the design
        digest; later calls, and later service runs over the same store,
        answer from disk without touching the analysis pipeline.
        """
        digest = self._resolve(target)
        if self.store is not None:
            stored = self.store.load_analysis(digest)
            if stored is not None:
                return stored
        design = self.registry.get(digest)

        def compute() -> Dict[str, object]:
            return {
                "digest": digest,
                "design": design.name,
                "composition": design.analysis.summary(),
                "components": [
                    analysis.summary() for analysis in design.component_analyses()
                ],
            }

        summary = await self.backend.run_blocking(compute)
        if self.store is not None:
            self.store.store_analysis(digest, summary)
        return summary

    def describe_blocking(
        self, target: Union[Design, str, Iterable[ProcessLike]]
    ) -> Dict[str, object]:
        """Synchronous convenience wrapper: ``asyncio.run(self.describe(...))``."""
        return asyncio.run(self.describe(target))

    # -- lifecycle / reporting -------------------------------------------------------
    def artifact_stats(self) -> Dict[str, object]:
        """Per-stage artifact-graph counters, summed over the live sessions.

        The service's verdict cache is just the top tier of the same graph
        every registered session resolves through; this is the view below
        it — which pipeline stages hit their memo, reloaded from the store,
        were computed, or were invalidated, per stage, across all designs.
        """
        stages: Dict[str, Dict[str, int]] = {}
        contexts: Dict[int, object] = {}
        for _digest, design in self.registry.entries():
            # designs registered over one shared context report one graph;
            # summing it per design would double-count every stage
            contexts.setdefault(id(design.context), design.context)
        for context in contexts.values():
            for stage, counters in context.graph.stats()["stages"].items():
                totals = stages.setdefault(
                    stage, {field: 0 for field in COUNTER_FIELDS}
                )
                for field in COUNTER_FIELDS:
                    totals[field] += counters.get(field, 0)
        return {
            "stages": stages,
            "sessions": len(self.registry),
            "contexts": len(contexts),
        }

    def fault_stats(self) -> list:
        """Per-site injection counters of every fault plan in this stack.

        One shared plan (the usual deployment) reports once; distinct
        store/backend plans report separately."""
        plans = []
        for holder in (self.store, self.backend):
            plan = getattr(holder, "fault_plan", None)
            if plan is not None and all(plan is not seen for seen in plans):
                plans.append(plan)
        return [plan.stats() for plan in plans]

    def stats(self) -> Dict[str, object]:
        """The historical nested stats dict.

        These keys are **deprecated aliases**: the flat, canonically-named
        view of the same counters is ``self.metrics.snapshot()`` (the
        ``repro_*`` families served by ``repro-serve metrics``); the nested
        shape is kept one release for existing consumers.
        """
        return {
            "registry": self.registry.stats(),
            "backend": self.backend.describe(),
            "store": self.store.stats() if self.store is not None else None,
            "cache": {"entries": len(self._cache), "limit": self.cache_size},
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "verdict_store_hits": self.verdict_store_hits,
            "coalesced": self.coalesced,
            "computations": self.computations,
            "inflight": len(self._inflight),
            "admission": {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "rejected": self.rejected,
            },
            "deadline_exceeded": self.deadline_exceeded,
            "failures": self.failures,
            "faults": self.fault_stats(),
            "artifacts": self.artifact_stats(),
            "slow_queries": self.slow_queries.stats(),
        }

    def close(self) -> None:
        self.backend.shutdown()
