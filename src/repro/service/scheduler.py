"""The asyncio request scheduler: coalesce, cache, and bound the work.

:class:`VerificationService` multiplexes many concurrent verification
queries over one registry, one artifact store and one bounded worker pool:

* **request coalescing** — identical in-flight ``(design digest, property,
  method, options)`` queries share a single underlying computation; 64
  concurrent submissions of the same query cost exactly one compile/explore
  (``service.computations`` counts the real work, ``service.coalesced`` the
  riders);
* **LRU verdict cache** — completed verdicts (as JSON-safe dictionaries,
  :meth:`repro.api.results.Verdict.to_dict`) are kept up to ``cache_size``
  entries with least-recently-used eviction;
* **bounded backends** — :class:`InlineBackend` runs queries on a small
  thread pool sharing the registry's memoized sessions (the default: one
  worker, zero pickling); :class:`ProcessPoolBackend` shards across worker
  processes, each holding per-digest memoized
  :class:`~repro.api.session.Design` sessions and its own handle on the
  shared artifact store — the process-pool worker pattern of
  :mod:`repro.api.parallel` promoted to a long-lived serving layer.

The scheduler is loop-agnostic: all asyncio state is created lazily inside
the running loop, so one service instance can serve a socket server, a
test's ``asyncio.run`` and the CLI alike.
"""

from __future__ import annotations

import asyncio
import copy
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.api.artifacts import COUNTER_FIELDS
from repro.api.session import Design, ProcessLike
from repro.lang.printer import options_fingerprint
from repro.service.registry import DesignRegistry
from repro.service.store import ArtifactStore

#: a fully-normalized query identity: (digest, prop, method, options repr)
QueryKey = Tuple[str, str, str, str]


def _is_digest(value: str) -> bool:
    if len(value) != 64:
        return False
    try:
        int(value, 16)
        return True
    except ValueError:
        return False


class InlineBackend:
    """Run queries off the event loop, against the shared in-process sessions.

    The queries execute against the registry's shared
    :class:`~repro.api.session.Design` sessions, so every memo (analyses,
    compiled relations, engines, verdict caches) is reused across requests
    with zero serialization.  Those sessions — and the one
    :class:`~repro.bdd.bdd.BDDManager` behind each — are **not**
    thread-safe, so verification itself runs under a lock regardless of the
    pool size: queries leave the event loop free (which is what lets
    concurrent duplicates pile onto one in-flight computation) but execute
    one at a time.  For CPU parallelism use :class:`ProcessPoolBackend`;
    pure-Python BDD work would not parallelize on threads anyway.
    """

    name = "inline"

    def __init__(self, workers: int = 1):
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._serialize = threading.Lock()

    def _verify(
        self, design: Design, prop: str, method: str, options: Dict[str, object]
    ):
        with self._serialize:
            return design.verify(prop, method, **options)

    async def run(
        self, design: Design, digest: str, prop: str, method: str, options: Dict[str, object]
    ) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        verdict = await loop.run_in_executor(
            self._executor, partial(self._verify, design, prop, method, options)
        )
        return verdict.to_dict()

    async def run_blocking(self, function):
        """Run session-touching work off the loop, under the same lock as
        verification — the shared sessions are not thread-safe."""
        loop = asyncio.get_running_loop()

        def call():
            with self._serialize:
                return function()

        return await loop.run_in_executor(self._executor, call)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def describe(self) -> Dict[str, object]:
        return {"backend": self.name, "workers": self.workers}


# -- process-pool worker state (one per worker process) --------------------------
_WORKER: Dict[str, object] = {}


def _initialize_worker(store_root: Optional[str]) -> None:
    _WORKER["designs"] = {}
    _WORKER["store"] = ArtifactStore(store_root) if store_root else None


def _worker_query(task) -> Dict[str, object]:
    """One query in a pool worker: per-digest memoized sessions + shared store."""
    from repro.api.parallel import sanitize_verdict

    digest, components, name, prop, method, options = task
    designs: Dict[str, Design] = _WORKER["designs"]  # type: ignore[assignment]
    design = designs.get(digest)
    if design is None:
        design = Design(name=name, components=list(components))
        design.context.artifact_cache = _WORKER.get("store")
        designs[digest] = design
    return sanitize_verdict(design.verify(prop, method, **options)).to_dict()


class ProcessPoolBackend:
    """Shard queries over ``workers`` processes, all reading one artifact store.

    Each worker process builds a design at most once per digest and keeps
    its own memoized :class:`~repro.api.session.AnalysisContext` (the
    :mod:`repro.api.parallel` pattern); the shared on-disk artifact store
    means even a worker seeing a design for the first time starts from the
    persisted compiled relation instead of recompiling.  Verdicts come back
    sanitized (reports dropped, unpicklable witnesses stringified), exactly
    as from ``Design.verify_many(parallel=N)``.
    """

    name = "process"

    def __init__(self, workers: int = 2, store_root: Optional[str] = None):
        self.workers = workers
        self.store_root = str(store_root) if store_root else None
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_worker,
            initargs=(self.store_root,),
        )
        # main-process session work (describe) never runs in the pool, but
        # concurrent calls still share non-thread-safe sessions
        self._local_lock = threading.Lock()

    async def run(
        self, design: Design, digest: str, prop: str, method: str, options: Dict[str, object]
    ) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        task = (digest, tuple(design.components), design.name, prop, method, options)
        return await loop.run_in_executor(
            self._pool, partial(_worker_query, task)
        )

    async def run_blocking(self, function):
        """Main-process session work, serialized and off the event loop."""
        loop = asyncio.get_running_loop()

        def call():
            with self._local_lock:
                return function()

        return await loop.run_in_executor(None, call)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def describe(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "workers": self.workers,
            "store_root": self.store_root,
        }


class VerificationService:
    """One long-lived verification endpoint over a registry, a store, a pool.

    ``register()`` content-addresses a design; ``verify()`` (a coroutine)
    answers a property query as a JSON-safe verdict dictionary, going
    through, in order: the in-memory LRU verdict cache → the in-flight
    table (request coalescing) → the artifact store's persisted verdicts →
    the backend worker pool, whose sessions consult the store's compiled
    relations before compiling anything.  All counters are exposed by
    :meth:`stats` — ``computations`` is the instrumentation the coalescing
    and throughput benchmarks assert on.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        registry: Optional[DesignRegistry] = None,
        backend: Optional[object] = None,
        cache_size: int = 1024,
    ):
        self.registry = registry or DesignRegistry()
        self.store = store
        self.backend = backend or InlineBackend()
        self.cache_size = cache_size
        self._cache: "OrderedDict[QueryKey, Dict[str, object]]" = OrderedDict()
        self._inflight: Dict[QueryKey, "asyncio.Task"] = {}
        #: underlying computations actually run (misses everywhere: LRU,
        #: in-flight table, verdict store) — the benchmark instrumentation
        self.computations = 0
        #: queries that joined an identical in-flight computation
        self.coalesced = 0
        self.cache_hits = 0
        self.verdict_store_hits = 0
        self.queries = 0

    # -- registration -------------------------------------------------------------
    def register(
        self,
        design: Union[Design, str, Iterable[ProcessLike]],
        name: Optional[str] = None,
    ) -> str:
        """Content-address a design and hook its session to the artifact store."""
        digest = self.registry.register(design, name=name)
        entry = self.registry.get(digest)
        if self.store is not None and entry.context.artifact_cache is None:
            entry.context.artifact_cache = self.store
        return digest

    def _resolve(self, target: Union[Design, str, Iterable[ProcessLike]]) -> str:
        """A digest for ``target``: look it up when it already is one,
        register it otherwise."""
        if isinstance(target, str) and _is_digest(target):
            if target not in self.registry:
                raise KeyError(f"no design registered under digest {target!r}")
            return target
        return self.register(target)

    # -- the query path -----------------------------------------------------------
    async def verify(
        self,
        target: Union[Design, str, Iterable[ProcessLike]],
        prop: str,
        method: str = "auto",
        **options: object,
    ) -> Dict[str, object]:
        """One property query; returns a JSON-safe verdict dictionary.

        ``target`` is a registered digest or anything :meth:`register`
        accepts.  Identical concurrent queries are coalesced onto one
        computation; completed ones are served from the LRU cache.
        """
        from repro.api.backends import canonical_property

        self.queries += 1
        if isinstance(target, str) and _is_digest(target):
            digest = self._resolve(target)  # a dict lookup: loop-safe
        else:
            # registration parses, normalizes and canonically prints — off
            # the loop, and serialized with verification (shared sessions)
            digest = await self.backend.run_blocking(partial(self.register, target))
        key: QueryKey = (
            digest,
            canonical_property(prop),
            method,
            options_fingerprint(options),
        )
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return copy.deepcopy(cached)
        task = self._inflight.get(key)
        if task is None:
            task = asyncio.ensure_future(self._compute(key, digest, prop, method, options))
            self._inflight[key] = task
        else:
            self.coalesced += 1
        # shield: one caller's cancellation must not abort the shared work;
        # deep copy: a caller mutating its verdict must not corrupt the
        # cached entry every other (and future) caller receives
        return copy.deepcopy(await asyncio.shield(task))

    async def _stored_verdict(self, key: QueryKey) -> Optional[Dict[str, object]]:
        """A persisted verdict for this exact query, when the store has one.

        The file read runs in the default executor — disk I/O must not
        stall the event loop (and needs no session lock)."""
        if self.store is None:
            return None
        digest, prop, method, options_key = key
        loop = asyncio.get_running_loop()
        verdict = await loop.run_in_executor(
            None, partial(self.store.load_verdict, digest, prop, method, options_key)
        )
        if verdict is not None:
            self.verdict_store_hits += 1
        return verdict

    async def _compute(
        self,
        key: QueryKey,
        digest: str,
        prop: str,
        method: str,
        options: Dict[str, object],
    ) -> Dict[str, object]:
        try:
            verdict = await self._stored_verdict(key)
            if verdict is None:
                self.computations += 1
                design = self.registry.get(digest)
                verdict = dict(
                    await self.backend.run(design, digest, prop, method, dict(options))
                )
                verdict["digest"] = digest
                if self.store is not None:
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        None,
                        partial(
                            self.store.store_verdict,
                            key[0], key[1], key[2], key[3], verdict,
                        ),
                    )
        finally:
            self._inflight.pop(key, None)
        self._cache[key] = verdict
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return verdict

    def verify_blocking(
        self,
        target: Union[Design, str, Iterable[ProcessLike]],
        prop: str,
        method: str = "auto",
        **options: object,
    ) -> Dict[str, object]:
        """Synchronous convenience wrapper: ``asyncio.run(self.verify(...))``."""
        return asyncio.run(self.verify(target, prop, method, **options))

    # -- analysis artifacts ---------------------------------------------------------
    async def describe(
        self, target: Union[Design, str, Iterable[ProcessLike]]
    ) -> Dict[str, object]:
        """Per-process analysis summaries of a design, served from the store.

        On the first call the composition and component analyses are
        computed — through the backend's ``run_blocking``, so the shared
        sessions are never touched from the event-loop thread nor
        concurrently with a verification — and persisted under the design
        digest; later calls, and later service runs over the same store,
        answer from disk without touching the analysis pipeline.
        """
        digest = self._resolve(target)
        if self.store is not None:
            stored = self.store.load_analysis(digest)
            if stored is not None:
                return stored
        design = self.registry.get(digest)

        def compute() -> Dict[str, object]:
            return {
                "digest": digest,
                "design": design.name,
                "composition": design.analysis.summary(),
                "components": [
                    analysis.summary() for analysis in design.component_analyses()
                ],
            }

        summary = await self.backend.run_blocking(compute)
        if self.store is not None:
            self.store.store_analysis(digest, summary)
        return summary

    def describe_blocking(
        self, target: Union[Design, str, Iterable[ProcessLike]]
    ) -> Dict[str, object]:
        """Synchronous convenience wrapper: ``asyncio.run(self.describe(...))``."""
        return asyncio.run(self.describe(target))

    # -- lifecycle / reporting -------------------------------------------------------
    def artifact_stats(self) -> Dict[str, object]:
        """Per-stage artifact-graph counters, summed over the live sessions.

        The service's verdict cache is just the top tier of the same graph
        every registered session resolves through; this is the view below
        it — which pipeline stages hit their memo, reloaded from the store,
        were computed, or were invalidated, per stage, across all designs.
        """
        stages: Dict[str, Dict[str, int]] = {}
        contexts: Dict[int, object] = {}
        for _digest, design in self.registry.entries():
            # designs registered over one shared context report one graph;
            # summing it per design would double-count every stage
            contexts.setdefault(id(design.context), design.context)
        for context in contexts.values():
            for stage, counters in context.graph.stats()["stages"].items():
                totals = stages.setdefault(
                    stage, {field: 0 for field in COUNTER_FIELDS}
                )
                for field in COUNTER_FIELDS:
                    totals[field] += counters.get(field, 0)
        return {
            "stages": stages,
            "sessions": len(self.registry),
            "contexts": len(contexts),
        }

    def stats(self) -> Dict[str, object]:
        return {
            "registry": self.registry.stats(),
            "backend": self.backend.describe(),
            "store": self.store.stats() if self.store is not None else None,
            "cache": {"entries": len(self._cache), "limit": self.cache_size},
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "verdict_store_hits": self.verdict_store_hits,
            "coalesced": self.coalesced,
            "computations": self.computations,
            "inflight": len(self._inflight),
            "artifacts": self.artifact_stats(),
        }

    def close(self) -> None:
        self.backend.shutdown()
