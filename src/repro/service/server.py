"""The JSON-lines socket front of the verification service.

One request per line, one response per line, UTF-8 JSON both ways over a
local Unix-domain socket.  Operations mirror the programmatic API:

====================  ==========================================================
``{"op": "ping"}``                     liveness probe → ``{"ok": true}``
``{"op": "register", "source": ...}``  content-address a design → its digest
``{"op": "verify", ...}``              a property query (by ``digest`` or
                                       ``source``) → a JSON verdict; extra
                                       keys — ``prop``, ``method``,
                                       ``options`` — as in ``Design.verify``
``{"op": "describe", "digest": ...}``  per-process analysis summaries
``{"op": "stats"}``                    registry / store / scheduler counters
``{"op": "metrics"}``                  the unified metrics snapshot
                                       (``repro_*`` families; JSON)
``{"op": "shutdown"}``                 stop serving (used by tests and the CLI)
====================  ==========================================================

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false, "error":
"...", "code": "..."}``; a failing query never takes the server down.  The
``code`` is the stable name of the :mod:`repro.service.errors` class the
scheduler raised (``deadline-exceeded``, ``overloaded`` — with its
``retry_after`` hint as a sibling field — ``query-failed``, ...), so
clients rebuild the exact typed error; any other exception is reported
under the generic ``error`` code.  A ``verify`` request may carry a
``deadline`` (seconds), threaded to the scheduler's per-caller deadline.
Concurrent client connections are served concurrently — the scheduler's
coalescing applies across connections, which is the whole point of
fronting it with a socket.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs import trace as obs_trace
from repro.service.errors import ServiceError
from repro.service.scheduler import VerificationService


class ServiceServer:
    """Serve one :class:`VerificationService` over a Unix socket."""

    def __init__(self, service: VerificationService, socket_path: Union[str, Path]):
        self.service = service
        self.socket_path = str(socket_path)
        self.connections = 0
        self.requests = 0
        self._stop: Optional["asyncio.Event"] = None
        self._handlers: set = set()

    # -- request dispatch ----------------------------------------------------------
    async def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        if op == "ping":
            return {}
        if op == "register":
            digest = self.service.register(
                str(request["source"]), name=request.get("name")
            )
            return {"digest": digest}
        if op == "verify":
            target = request.get("digest") or request.get("source")
            if not target:
                raise ValueError("verify needs a 'digest' or a 'source'")
            options = dict(request.get("options") or {})
            deadline = request.get("deadline")
            return await self.service.verify(
                str(target),
                str(request["prop"]),
                str(request.get("method", "auto")),
                deadline=float(deadline) if deadline is not None else None,
                **options,
            )
        if op == "describe":
            target = request.get("digest") or request.get("source")
            if not target:
                raise ValueError("describe needs a 'digest' or a 'source'")
            return await self.service.describe(str(target))
        if op == "stats":
            stats = self.service.stats()
            stats["server"] = {
                "socket": self.socket_path,
                "connections": self.connections,
                "requests": self.requests,
            }
            return stats
        if op == "metrics":
            return self.service.metrics.snapshot()
        if op == "shutdown":
            if self._stop is not None:
                self._stop.set()
            return {"stopping": True}
        raise ValueError(f"unknown operation {op!r}")

    #: per-request line limit: large pre-registered sources are normal,
    #: so allow well past asyncio's 64 KiB StreamReader default
    LINE_LIMIT = 16 * 1024 * 1024

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError) as error:
                    # an oversized request must get a protocol error, not a
                    # silently dropped connection; the buffer is no longer
                    # line-aligned afterwards, so close after responding
                    writer.write(
                        json.dumps(
                            {"ok": False, "error": f"request too large: {error}"}
                        ).encode("utf-8")
                        + b"\n"
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                self.requests += 1
                try:
                    request = json.loads(line.decode("utf-8"))
                    # the receiving half of the client's traceparent handoff:
                    # this request's spans parent under the remote span
                    remote = (
                        obs_trace.extract(request) if obs_trace.TRACING else None
                    )
                    request.pop("traceparent", None)
                    with obs_trace.activate(remote):
                        with obs_trace.span(
                            "server.request", op=str(request.get("op"))
                        ):
                            result = await self._dispatch(request)
                    response = {"ok": True, "result": result}
                except ServiceError as error:
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                        "code": error.code,
                    }
                    if error.retry_after is not None:
                        response["retry_after"] = error.retry_after
                except Exception as error:  # noqa: BLE001 - protocol boundary
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                        "code": "error",
                    }
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            # close without awaiting wait_closed(): on shutdown the loop
            # cancels pending handlers, and an awaited close here would
            # surface that cancellation as a spurious error callback
            writer.close()

    # -- lifecycle ------------------------------------------------------------------
    async def serve_forever(self, ready: Optional[object] = None) -> None:
        """Bind the socket and serve until a ``shutdown`` request (or cancel).

        ``ready``, when given, is an object with a ``set()`` method (e.g. a
        :class:`threading.Event`) signalled once the socket is accepting —
        how tests and the CLI synchronize with a server thread.
        """
        self._stop = asyncio.Event()
        path = Path(self.socket_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()
        server = await asyncio.start_unix_server(
            self._handle, path=self.socket_path, limit=self.LINE_LIMIT
        )
        try:
            if ready is not None:
                ready.set()
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # let open connections observe EOF and finish on their own — a
            # handler cancelled by loop teardown logs a spurious error on
            # some Python versions; only hung connections get cancelled
            if self._handlers:
                await asyncio.wait(set(self._handlers), timeout=2)
            for task in set(self._handlers):
                task.cancel()
            try:
                path.unlink()
            except OSError:
                pass
