"""The content-addressed artifact store: pay for compilation once, ever.

Artifacts live on disk under ``<root>/objects/<digest[:2]>/<digest>/<kind>.json``
— the same layout whether the store is read by the serving process, by a
process-pool worker, or by a later service run.  Three kinds are stored:

* ``compiled`` — the serialized BDD step relation of a process
  (:meth:`repro.mc.compiled.CompiledAbstraction.to_payload`), or the
  persisted *negative* answer (process outside the compiled fragment, with
  its obstacles) so warm starts skip the recompile attempt entirely;
* ``analysis`` — per-process analysis summaries of a design (composition
  and components), served by the service's ``describe`` operation without
  recomputation;
* ``verdict-<query>`` — completed verdicts, one object per
  ``(property, method, options)`` query of a design.  Verification of a
  content-addressed design is deterministic, so a verdict is itself
  content-addressable: a restarted service answers repeat queries from
  disk without running any pipeline stage.

The store doubles as the ``artifact_cache`` hook of
:class:`~repro.api.session.AnalysisContext` (:meth:`load_compiled` /
:meth:`store_compiled`), which is how every engine of the session — single
process, lazy product, retyped product components — transparently reuses
persisted relations.

Writes are atomic (temp file + ``os.replace``), so concurrent services
sharing a store directory can race on the same artifact and both end up
with an intact object; content-addressing makes the race benign (both
write the same bytes, modulo float jitter in nothing — payloads are pure
functions of the process).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.lang.normalize import NormalizedProcess
from repro.lang.printer import process_digest
from repro.mc.compiled import CompiledAbstraction, compilation_obstacles


class ArtifactStore:
    """A directory of JSON artifacts keyed by ``(content digest, kind)``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0

    # -- raw object access -------------------------------------------------------
    def path(self, digest: str, kind: str) -> Path:
        return self.root / "objects" / digest[:2] / digest / f"{kind}.json"

    def has(self, digest: str, kind: str) -> bool:
        return self.path(digest, kind).is_file()

    def get(self, digest: str, kind: str) -> Optional[Dict[str, object]]:
        """The stored payload, or ``None`` on a miss (or an unreadable object)."""
        path = self.path(digest, kind)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            # a torn or corrupted object is a miss, not a crash; the caller
            # recomputes and the next put() heals the entry
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, kind: str, payload: Dict[str, object]) -> Path:
        """Atomically write one artifact; concurrent writers cannot tear it."""
        path = self.path(digest, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            prefix=f".{kind}-", suffix=".json", dir=path.parent
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- the AnalysisContext.artifact_cache protocol ------------------------------
    def load_compiled(
        self, process: NormalizedProcess
    ) -> Tuple[bool, Optional[CompiledAbstraction]]:
        """``(found, abstraction)`` for a process's compiled step relation.

        ``(True, None)`` is the persisted negative answer — the process is
        known to be outside the compiled fragment and the caller should fall
        back to the interpreter without attempting compilation.  A payload
        that fails validation (format bump, digest mismatch after a
        canonical-form change) is treated as a miss and recompiled.
        """
        digest = process_digest(process)
        payload = self.get(digest, "compiled")
        if payload is None:
            return False, None
        if not payload.get("compilable", True):
            # negative answers are format-versioned too: a release that
            # widens the compiled fragment bumps PAYLOAD_FORMAT, and stale
            # negatives must become misses (and be retried), not pins to
            # the interpreter path forever
            if payload.get("format") != CompiledAbstraction.PAYLOAD_FORMAT:
                self.invalid += 1
                return False, None
            return True, None
        try:
            return True, CompiledAbstraction.from_payload(
                process, payload["abstraction"]
            )
        except (KeyError, ValueError, TypeError):
            self.invalid += 1
            return False, None

    def store_compiled(
        self, process: NormalizedProcess, abstraction: Optional[CompiledAbstraction]
    ) -> None:
        """Persist a compilation result — positive or negative — for reuse."""
        digest = process_digest(process)
        if abstraction is None:
            payload: Dict[str, object] = {
                "compilable": False,
                "format": CompiledAbstraction.PAYLOAD_FORMAT,
                "process": process.name,
                "obstacles": compilation_obstacles(process),
            }
        else:
            payload = {
                "compilable": True,
                "process": process.name,
                "abstraction": abstraction.to_payload(),
            }
        self.put(digest, "compiled", payload)

    # -- analysis summaries --------------------------------------------------------
    def load_analysis(self, digest: str) -> Optional[Dict[str, object]]:
        return self.get(digest, "analysis")

    def store_analysis(self, digest: str, summary: Dict[str, object]) -> None:
        self.put(digest, "analysis", summary)

    # -- persisted verdicts ----------------------------------------------------------
    # A verification query on a content-addressed design is deterministic:
    # same digest, same property, same method, same options ⇒ same verdict.
    # That makes completed verdicts themselves content-addressable artifacts
    # (filed under the design digest, one object per query), so a restarted
    # service — or another worker process — answers repeat queries from disk
    # without touching the pipeline at all.
    @staticmethod
    def query_kind(prop: str, method: str, options_key: str) -> str:
        token = hashlib.sha256(
            f"{prop}\x00{method}\x00{options_key}".encode("utf-8")
        ).hexdigest()[:16]
        return f"verdict-{token}"

    def load_verdict(
        self, digest: str, prop: str, method: str, options_key: str
    ) -> Optional[Dict[str, object]]:
        return self.get(digest, self.query_kind(prop, method, options_key))

    def store_verdict(
        self,
        digest: str,
        prop: str,
        method: str,
        options_key: str,
        verdict: Dict[str, object],
    ) -> None:
        self.put(digest, self.query_kind(prop, method, options_key), verdict)

    # -- reporting -----------------------------------------------------------------
    def object_count(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for path in objects.glob("*/*/*.json"))

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "objects": self.object_count(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
        }
