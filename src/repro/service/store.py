"""The content-addressed artifact store: pay for compilation once, ever.

Artifacts live on disk under ``<root>/objects/<digest[:2]>/<digest>/<kind>.json``
— the same layout whether the store is read by the serving process, by a
process-pool worker, or by a later service run.  The stored kinds:

* ``compiled`` — the serialized BDD step relation of a process
  (:meth:`repro.mc.compiled.CompiledAbstraction.to_payload`), or the
  persisted *negative* answer (process outside the compiled fragment, with
  its obstacles) so warm starts skip the recompile attempt entirely;
* ``diagnosis`` — the per-component obligation of the weakly hierarchic
  criterion (compilable / hierarchic / roots,
  :class:`~repro.properties.composition.ComponentDiagnosis`), keyed by the
  component digest;
* ``obligations-<composition>`` — the composition-level clauses of
  Definition 12 (:class:`~repro.properties.composition.CompositionObligations`),
  keyed by the design digest and suffixed with the composition's own
  content digest (a custom composition differs from the plain compose);
* ``analysis`` — per-process analysis summaries of a design (composition
  and components), served by the service's ``describe`` operation without
  recomputation;
* ``verdict-<query>`` — completed verdicts, one object per
  ``(property, method, options)`` query of a design.  Verification of a
  content-addressed design is deterministic, so a verdict is itself
  content-addressable: a restarted service answers repeat queries from
  disk without running any pipeline stage.

The store is the **persistent tier** of the session's
:class:`~repro.api.artifacts.ArtifactGraph`: attaching it as
``AnalysisContext.artifact_cache`` plugs :meth:`get` / :meth:`put` under
every persistent stage of the pipeline, which is how a warm store
accelerates all of them — compilations, per-component diagnoses,
composition obligations and completed verdicts alike — and how every
engine of the session (single process, lazy product, retyped product
components) transparently reuses persisted relations.  The historical
:meth:`load_compiled` / :meth:`store_compiled` protocol remains as a thin
wrapper over the same objects.

Writes are atomic (temp file + ``os.replace``), so concurrent services
sharing a store directory can race on the same artifact and both end up
with an intact object; content-addressing makes the race benign (both
write the same bytes, modulo float jitter in nothing — payloads are pure
functions of the process).

**Self-healing.**  Atomic writes cannot protect against what happens to an
object *after* it lands — bit rot, a careless editor, a partially-synced
filesystem.  Objects are therefore written as checksummed envelopes: a
one-line JSON header carrying the CRC-32 of the payload bytes, then the
payload itself.  (A checksum, not a cryptographic digest: the envelope
detects accidental corruption — anything that can forge a payload can
forge the header beside it, so a stronger hash would buy no security,
only a slower warm read.)  :meth:`get` verifies the checksum before
parsing; an object
that fails verification (or fails to parse at all) is **quarantined** —
moved to ``<root>/corrupt/<digest>-<kind>.json`` — and reported as a miss,
so the caller recomputes and the next :meth:`put` heals the entry.  A
corrupted object can therefore cost one recomputation, never a wrong
answer.  Pre-envelope objects (no header line) still read, counted as
``unverified``.  Write failures (``OSError``, disk full, injected) are
absorbed and counted — the store is a cache; losing a write degrades
performance, not correctness.

An optional :class:`~repro.service.faults.FaultPlan` injects read/write
faults at this boundary; the chaos suite drives the quarantine/heal path
through it deterministically.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.obs import trace as obs_trace
from repro.service.faults import FaultPlan

from repro.api.artifacts import verdict_kind
from repro.lang.normalize import NormalizedProcess
from repro.lang.printer import process_digest
from repro.mc.compiled import (
    CompiledAbstraction,
    compiled_artifact_payload,
    compiled_from_artifact,
)


class ArtifactStore:
    """A directory of JSON artifacts keyed by ``(content digest, kind)``.

    ``checksums=False`` writes/reads the pre-envelope format (no integrity
    header) — kept for the benchmark that gates the envelope's warm-path
    overhead and for byte-compatible comparisons, not for production use.
    """

    #: first bytes of a checksummed envelope's header line
    HEADER_PREFIX = '{"repro-store"'
    #: the key preceding the payload checksum in the header's json.dumps shape
    CHECKSUM_MARKER = '"crc32": '
    FORMAT = 1

    def __init__(
        self,
        root: Union[str, Path],
        fault_plan: Optional[FaultPlan] = None,
        checksums: bool = True,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fault_plan = fault_plan
        self.checksums = checksums
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0
        #: objects whose envelope digest verified on read
        self.verified = 0
        #: legacy objects read without an integrity header
        self.unverified = 0
        #: corrupt objects moved aside to ``corrupt/`` (or deleted)
        self.quarantined = 0
        #: writes absorbed as failures (real or injected OSError)
        self.write_errors = 0
        #: reads that failed with an injected OSError
        self.read_errors = 0
        #: quarantined entries later rewritten by a put (self-heals completed)
        self.healed = 0
        #: (digest, kind) pairs quarantined and not yet healed
        self._quarantined_keys: set = set()

    # -- raw object access -------------------------------------------------------
    def path(self, digest: str, kind: str) -> Path:
        return self.root / "objects" / digest[:2] / digest / f"{kind}.json"

    def corrupt_path(self, digest: str, kind: str) -> Path:
        return self.root / "corrupt" / f"{digest}-{kind}.json"

    def has(self, digest: str, kind: str) -> bool:
        return self.path(digest, kind).is_file()

    def _decode(self, text: str) -> Optional[Dict[str, object]]:
        """Parse (and, for envelopes, verify) one object's text.

        ``None`` means the object is corrupt — torn, bit-flipped, or an
        envelope whose payload does not checksum to its header's value.
        """
        if text.startswith(self.HEADER_PREFIX):
            head, newline, body = text.partition("\n")
            if not newline:
                return None  # torn before the payload even started
            # the header is this store's own fixed json.dumps shape; slicing
            # the checksum out beats a json.loads on every warm read, and any
            # corruption that breaks the shape fails the comparison anyway
            marker = head.find(self.CHECKSUM_MARKER)
            if marker < 0:
                return None
            start = marker + len(self.CHECKSUM_MARKER)
            end = head.find("}", start)
            try:
                expected = int(head[start:end])
            except ValueError:
                return None
            if zlib.crc32(body.encode("utf-8")) != expected:
                return None
            try:
                payload = json.loads(body)
            except ValueError:  # pragma: no cover - digest already matched
                return None
            self.verified += 1
            return payload
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        self.unverified += 1
        return payload

    def _quarantine(self, path: Path, digest: str, kind: str) -> None:
        """Move a corrupt object out of the store so it cannot poison reads.

        The quarantined copy is kept under ``corrupt/`` for post-mortems;
        when even the move fails the object is deleted — a corrupt object
        left in place would fail every future read.
        """
        target = self.corrupt_path(digest, kind)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return
        self.quarantined += 1
        self._quarantined_keys.add((digest, kind))
        if obs_trace.TRACING:
            obs_trace.add_event("store.quarantine", digest=digest[:12], kind=kind)

    def get(self, digest: str, kind: str) -> Optional[Dict[str, object]]:
        """The stored payload, or ``None`` on a miss or a corrupt object.

        A corrupt object — failed checksum, torn or unparseable text — is
        quarantined to ``corrupt/`` and reported as a miss; the caller's
        recomputation and the following :meth:`put` heal the entry.
        """
        if not obs_trace.TRACING:
            return self._read(digest, kind)[0]
        with obs_trace.span(
            "store.get", digest=digest[:12], kind=kind
        ) as read_span:
            payload, outcome = self._read(digest, kind)
            read_span.set_tag("outcome", outcome)
            return payload

    def _read(self, digest: str, kind: str):
        """``(payload, outcome)`` with outcome ∈ hit/miss/corrupt/read_error."""
        path = self.path(digest, kind)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None, "miss"
        if self.fault_plan is not None:
            try:
                text = self.fault_plan.store_read(text)
            except OSError:
                self.read_errors += 1
                self.misses += 1
                return None, "read_error"
        payload = self._decode(text)
        if payload is None:
            self._quarantine(path, digest, kind)
            self.invalid += 1
            self.misses += 1
            return None, "corrupt"
        self.hits += 1
        return payload, "hit"

    def put(
        self, digest: str, kind: str, payload: Dict[str, object]
    ) -> Optional[Path]:
        """Atomically write one artifact; concurrent writers cannot tear it.

        Returns the object path, or ``None`` when the write failed — the
        store is a cache, so a failed write (disk full, permissions, an
        injected fault) is absorbed and counted in ``write_errors`` rather
        than failing the computation whose result it was persisting.
        """
        if not obs_trace.TRACING:
            return self._write(digest, kind, payload)
        with obs_trace.span(
            "store.put", digest=digest[:12], kind=kind
        ) as write_span:
            path = self._write(digest, kind, payload)
            write_span.set_tag("outcome", "ok" if path is not None else "error")
            return path

    def _write(
        self, digest: str, kind: str, payload: Dict[str, object]
    ) -> Optional[Path]:
        body = json.dumps(payload)
        if self.checksums:
            header = json.dumps(
                {
                    "repro-store": self.FORMAT,
                    "crc32": zlib.crc32(body.encode("utf-8")),
                }
            )
            content = header + "\n" + body
        else:
            content = body
        fault = self.fault_plan.store_write() if self.fault_plan is not None else None
        path = self.path(digest, kind)
        try:
            if fault is not None and fault[0] == "oserror":
                raise OSError("injected artifact write failure")
            if fault is not None and fault[0] == "torn":
                # what a non-atomic writer would have left behind: a prefix
                content = content[: max(1, int(len(content) * fault[1]))]
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                prefix=f".{kind}-", suffix=".json", dir=path.parent
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    stream.write(content)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.write_errors += 1
            return None
        self.writes += 1
        if (digest, kind) in self._quarantined_keys:
            self._quarantined_keys.discard((digest, kind))
            self.healed += 1
            if obs_trace.TRACING:
                obs_trace.add_event("store.heal", digest=digest[:12], kind=kind)
        return path

    # -- the historical artifact_cache protocol (wraps the graph objects) ----------
    def load_compiled(
        self, process: NormalizedProcess
    ) -> Tuple[bool, Optional[CompiledAbstraction]]:
        """``(found, abstraction)`` for a process's compiled step relation.

        ``(True, None)`` is the persisted negative answer — the process is
        known to be outside the compiled fragment and the caller should fall
        back to the interpreter without attempting compilation.  A payload
        that fails validation (format bump, stale negative, α-variant
        spellings) is treated as a miss and recompiled.  Sessions now reach
        the same objects through the artifact graph's :meth:`get`/:meth:`put`
        protocol; this wrapper serves direct callers.
        """
        digest = process_digest(process)
        payload = self.get(digest, "compiled")
        if payload is None:
            return False, None
        try:
            return True, compiled_from_artifact(process, payload)
        except (KeyError, ValueError, TypeError):
            self.invalid += 1
            return False, None

    def store_compiled(
        self, process: NormalizedProcess, abstraction: Optional[CompiledAbstraction]
    ) -> None:
        """Persist a compilation result — positive or negative — for reuse."""
        self.put(
            process_digest(process),
            "compiled",
            compiled_artifact_payload(process, abstraction),
        )

    # -- analysis summaries --------------------------------------------------------
    def load_analysis(self, digest: str) -> Optional[Dict[str, object]]:
        return self.get(digest, "analysis")

    def store_analysis(self, digest: str, summary: Dict[str, object]) -> None:
        self.put(digest, "analysis", summary)

    # -- persisted verdicts ----------------------------------------------------------
    # A verification query on a content-addressed design is deterministic:
    # same digest, same property, same method, same options ⇒ same verdict.
    # That makes completed verdicts themselves content-addressable artifacts
    # (filed under the design digest, one object per query), so a restarted
    # service — or another worker process — answers repeat queries from disk
    # without touching the pipeline at all.
    @staticmethod
    def query_kind(prop: str, method: str, options_key: str) -> str:
        # one naming scheme with the session facade's verdict nodes
        # (repro.api.artifacts.verdict_kind), so a verdict a Design persists
        # is the object the service answers the repeat query from
        return verdict_kind(prop, method, options_key)

    def load_verdict(
        self, digest: str, prop: str, method: str, options_key: str
    ) -> Optional[Dict[str, object]]:
        return self.get(digest, self.query_kind(prop, method, options_key))

    def store_verdict(
        self,
        digest: str,
        prop: str,
        method: str,
        options_key: str,
        verdict: Dict[str, object],
    ) -> None:
        self.put(digest, self.query_kind(prop, method, options_key), verdict)

    # -- reporting -----------------------------------------------------------------
    def object_count(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for path in objects.glob("*/*/*.json"))

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "objects": self.object_count(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
            "verified": self.verified,
            "unverified": self.unverified,
            "quarantined": self.quarantined,
            "healed": self.healed,
            "write_errors": self.write_errors,
            "read_errors": self.read_errors,
            "checksums": self.checksums,
        }
