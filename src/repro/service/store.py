"""The content-addressed artifact store: pay for compilation once, ever.

Artifacts live on disk under ``<root>/objects/<digest[:2]>/<digest>/<kind>.json``
— the same layout whether the store is read by the serving process, by a
process-pool worker, or by a later service run.  The stored kinds:

* ``compiled`` — the serialized BDD step relation of a process
  (:meth:`repro.mc.compiled.CompiledAbstraction.to_payload`), or the
  persisted *negative* answer (process outside the compiled fragment, with
  its obstacles) so warm starts skip the recompile attempt entirely;
* ``diagnosis`` — the per-component obligation of the weakly hierarchic
  criterion (compilable / hierarchic / roots,
  :class:`~repro.properties.composition.ComponentDiagnosis`), keyed by the
  component digest;
* ``obligations-<composition>`` — the composition-level clauses of
  Definition 12 (:class:`~repro.properties.composition.CompositionObligations`),
  keyed by the design digest and suffixed with the composition's own
  content digest (a custom composition differs from the plain compose);
* ``analysis`` — per-process analysis summaries of a design (composition
  and components), served by the service's ``describe`` operation without
  recomputation;
* ``verdict-<query>`` — completed verdicts, one object per
  ``(property, method, options)`` query of a design.  Verification of a
  content-addressed design is deterministic, so a verdict is itself
  content-addressable: a restarted service answers repeat queries from
  disk without running any pipeline stage.

The store is the **persistent tier** of the session's
:class:`~repro.api.artifacts.ArtifactGraph`: attaching it as
``AnalysisContext.artifact_cache`` plugs :meth:`get` / :meth:`put` under
every persistent stage of the pipeline, which is how a warm store
accelerates all of them — compilations, per-component diagnoses,
composition obligations and completed verdicts alike — and how every
engine of the session (single process, lazy product, retyped product
components) transparently reuses persisted relations.  The historical
:meth:`load_compiled` / :meth:`store_compiled` protocol remains as a thin
wrapper over the same objects.

Writes are atomic (temp file + ``os.replace``), so concurrent services
sharing a store directory can race on the same artifact and both end up
with an intact object; content-addressing makes the race benign (both
write the same bytes, modulo float jitter in nothing — payloads are pure
functions of the process).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.api.artifacts import verdict_kind
from repro.lang.normalize import NormalizedProcess
from repro.lang.printer import process_digest
from repro.mc.compiled import (
    CompiledAbstraction,
    compiled_artifact_payload,
    compiled_from_artifact,
)


class ArtifactStore:
    """A directory of JSON artifacts keyed by ``(content digest, kind)``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0

    # -- raw object access -------------------------------------------------------
    def path(self, digest: str, kind: str) -> Path:
        return self.root / "objects" / digest[:2] / digest / f"{kind}.json"

    def has(self, digest: str, kind: str) -> bool:
        return self.path(digest, kind).is_file()

    def get(self, digest: str, kind: str) -> Optional[Dict[str, object]]:
        """The stored payload, or ``None`` on a miss (or an unreadable object)."""
        path = self.path(digest, kind)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            # a torn or corrupted object is a miss, not a crash; the caller
            # recomputes and the next put() heals the entry
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, kind: str, payload: Dict[str, object]) -> Path:
        """Atomically write one artifact; concurrent writers cannot tear it."""
        path = self.path(digest, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            prefix=f".{kind}-", suffix=".json", dir=path.parent
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- the historical artifact_cache protocol (wraps the graph objects) ----------
    def load_compiled(
        self, process: NormalizedProcess
    ) -> Tuple[bool, Optional[CompiledAbstraction]]:
        """``(found, abstraction)`` for a process's compiled step relation.

        ``(True, None)`` is the persisted negative answer — the process is
        known to be outside the compiled fragment and the caller should fall
        back to the interpreter without attempting compilation.  A payload
        that fails validation (format bump, stale negative, α-variant
        spellings) is treated as a miss and recompiled.  Sessions now reach
        the same objects through the artifact graph's :meth:`get`/:meth:`put`
        protocol; this wrapper serves direct callers.
        """
        digest = process_digest(process)
        payload = self.get(digest, "compiled")
        if payload is None:
            return False, None
        try:
            return True, compiled_from_artifact(process, payload)
        except (KeyError, ValueError, TypeError):
            self.invalid += 1
            return False, None

    def store_compiled(
        self, process: NormalizedProcess, abstraction: Optional[CompiledAbstraction]
    ) -> None:
        """Persist a compilation result — positive or negative — for reuse."""
        self.put(
            process_digest(process),
            "compiled",
            compiled_artifact_payload(process, abstraction),
        )

    # -- analysis summaries --------------------------------------------------------
    def load_analysis(self, digest: str) -> Optional[Dict[str, object]]:
        return self.get(digest, "analysis")

    def store_analysis(self, digest: str, summary: Dict[str, object]) -> None:
        self.put(digest, "analysis", summary)

    # -- persisted verdicts ----------------------------------------------------------
    # A verification query on a content-addressed design is deterministic:
    # same digest, same property, same method, same options ⇒ same verdict.
    # That makes completed verdicts themselves content-addressable artifacts
    # (filed under the design digest, one object per query), so a restarted
    # service — or another worker process — answers repeat queries from disk
    # without touching the pipeline at all.
    @staticmethod
    def query_kind(prop: str, method: str, options_key: str) -> str:
        # one naming scheme with the session facade's verdict nodes
        # (repro.api.artifacts.verdict_kind), so a verdict a Design persists
        # is the object the service answers the repeat query from
        return verdict_kind(prop, method, options_key)

    def load_verdict(
        self, digest: str, prop: str, method: str, options_key: str
    ) -> Optional[Dict[str, object]]:
        return self.get(digest, self.query_kind(prop, method, options_key))

    def store_verdict(
        self,
        digest: str,
        prop: str,
        method: str,
        options_key: str,
        verdict: Dict[str, object],
    ) -> None:
        self.put(digest, self.query_kind(prop, method, options_key), verdict)

    # -- reporting -----------------------------------------------------------------
    def object_count(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for path in objects.glob("*/*/*.json"))

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "objects": self.object_count(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
        }
