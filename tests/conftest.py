"""Shared fixtures: the paper's processes in normalized form."""

from __future__ import annotations

import pytest

from repro.lang.normalize import normalize
from repro.library.basic import (
    buffer_process,
    buffer2_process,
    filter_merge_composition,
    filter_process,
    merge_process,
)
from repro.library.ltta import ltta_components, ltta_process
from repro.library.ltta import normalized_suite as ltta_suite
from repro.library.ltta import registry as ltta_registry
from repro.library.producer_consumer import normalized_suite as producer_consumer_suite
from repro.properties.compilable import ProcessAnalysis


@pytest.fixture(scope="session")
def filter_normalized():
    return normalize(filter_process())


@pytest.fixture(scope="session")
def merge_normalized():
    return normalize(merge_process())


@pytest.fixture(scope="session")
def buffer_normalized():
    return normalize(buffer_process())


@pytest.fixture(scope="session")
def filter_merge():
    return filter_merge_composition()


@pytest.fixture(scope="session")
def producer_consumer():
    return producer_consumer_suite()


@pytest.fixture(scope="session")
def ltta():
    return ltta_suite()


@pytest.fixture(scope="session")
def ltta_parts():
    return ltta_components()


@pytest.fixture(scope="session")
def buffer_analysis(buffer_normalized):
    return ProcessAnalysis(buffer_normalized)


@pytest.fixture(scope="session")
def filter_analysis(filter_normalized):
    return ProcessAnalysis(filter_normalized)
