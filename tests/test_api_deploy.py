"""Design.compile: the four deployment schemes behind one interface."""

from __future__ import annotations

import pytest

from repro import Design, StreamIO
from repro.api.deploy import (
    ConcurrentDeployment,
    ControlledDeployment,
    DeploymentError,
    LttaDeployment,
    SequentialDeployment,
)
from repro.library.generators import pipeline_network
from repro.library.ltta import ltta_components
from repro.library.producer_consumer import normalized_suite

INPUTS = {"a": [True, False, True, False], "b": [False, True, False, True]}
EXPECTED_U = [1, 2]
EXPECTED_V = [1, 2, 3, 5]


@pytest.fixture(scope="module")
def main_design():
    suite = normalized_suite()
    return Design(name="main", components=[suite["producer"], suite["consumer"]])


class TestSequential:
    def test_single_component_step_function(self):
        components, _ = pipeline_network(1)
        design = Design(name="relay", components=list(components))
        deployment = design.compile("sequential")
        assert isinstance(deployment, SequentialDeployment)
        flows = deployment.run({"x0": [1, 2, 3], "c0": [True] * 3})
        assert flows["x1"] == [2, 3, 4]
        assert "relay_iterate" in deployment.listing()

    def test_multi_rooted_design_needs_master_clocks(self, main_design):
        from repro.codegen.sequential import CodeGenerationError

        with pytest.raises(CodeGenerationError):
            main_design.compile("sequential")
        deployment = main_design.compile("sequential", master_clocks=True)
        assert deployment.master_clock_inputs  # Section 5.1's C_<root> inputs

    def test_run_is_repeatable_after_reset(self):
        components, _ = pipeline_network(1)
        design = Design(name="relay", components=list(components))
        deployment = design.compile("sequential")
        first = deployment.run({"x0": [5], "c0": [True]})
        second = deployment.run({"x0": [5], "c0": [True]})
        assert first == second


class TestControlled:
    def test_producer_consumer_flows(self, main_design):
        deployment = main_design.compile("controlled")
        assert isinstance(deployment, ControlledDeployment)
        flows = deployment.run(INPUTS)
        assert flows["u"] == EXPECTED_U
        assert flows["v"] == EXPECTED_V

    def test_rendezvous_constraints_synthesized(self, main_design):
        deployment = main_design.compile("controlled")
        assert deployment.constraints  # [¬a] = [b]
        assert "main_iterate" in deployment.listing()

    def test_stepwise_execution(self, main_design):
        deployment = main_design.compile("controlled")
        deployment.reset()
        io = StreamIO({name: list(values) for name, values in INPUTS.items()})
        steps = 0
        while deployment.step(io):
            steps += 1
        assert steps >= len(INPUTS["a"])
        assert io.output("v") == EXPECTED_V


class TestConcurrent:
    def test_same_flows_as_controlled(self, main_design):
        deployment = main_design.compile("concurrent")
        assert isinstance(deployment, ConcurrentDeployment)
        flows = deployment.run(INPUTS)
        assert flows["u"] == EXPECTED_U
        assert flows["v"] == EXPECTED_V

    def test_step_is_rejected_with_guidance(self, main_design):
        deployment = main_design.compile("concurrent")
        with pytest.raises(DeploymentError):
            deployment.step(StreamIO({}))


class TestLtta:
    def test_unit_paces_match_sequential_pipeline(self):
        components, _ = pipeline_network(3)
        design = Design(name="pipe", components=list(components))
        ltta = design.compile("ltta")
        assert isinstance(ltta, LttaDeployment)
        n = 4
        feed = {
            "x0": [1, 2, 3, 4],
            "c0": [True] * n,
            "c1": [True] * n,
            "c2": [True] * n,
        }
        assert ltta.run(feed)["x3"] == [4, 5, 6, 7]

    def test_alternating_flag_absorbs_oversampling(self):
        """An LTTA reader paced faster than the writer still gets each value once."""
        parts = ltta_components()
        design = Design(
            name="ltta",
            components=[parts["writer"], parts["bus_stage1"], parts["bus_stage2"], parts["reader"]],
        )
        assert design.verify("weakly-hierarchic").holds
        # Deploy writer → sustained latch → reader (the latch plays the bus);
        # the reader samples the latch twice per written value and the
        # alternating flag extracts each value exactly once.  The reader is
        # rebuilt on the writer's signal names, since the library's bus stages
        # rename yw/bw to yr/br along the way.
        from repro.lang.builder import ProcessBuilder, signal, tick, when_true
        from repro.library.basic import filter_process

        builder = ProcessBuilder("reader", inputs=["yw", "bw", "cr"], outputs=["xr"])
        builder.local("fr")
        builder.instantiate("filter", [signal("bw")], ["fr"])
        builder.define("xr", signal("yw").when(signal("fr")))
        builder.constrain(tick("yw"), tick("bw"), when_true("cr"))
        pair = Design(
            name="wr",
            components=[parts["writer"]],
            registry={"filter": filter_process()},
        ).add_component(builder.build())
        deployment = pair.compile("ltta", paces={"writer": 2, "reader": 1})
        samples = 4
        flows = deployment.run(
            {
                "xw": [100 + i for i in range(samples)],
                "cw": [True] * samples,
                "cr": [True] * (2 * samples),
            }
        )
        assert flows["xr"] == [100 + i for i in range(samples)]

    def test_listing_mentions_paces_and_bus(self):
        components, _ = pipeline_network(2)
        design = Design(name="pipe", components=list(components))
        listing = design.compile("ltta", paces={"relay1": 2}).listing()
        assert "t % 2" in listing and "bus_" in listing


class TestStrategyDispatch:
    def test_unknown_strategy(self, main_design):
        with pytest.raises(DeploymentError):
            main_design.compile("distributed")

    def test_compositional_schemes_require_endochronous_components(self):
        suite = normalized_suite()
        # `main` itself has two roots: not endochronous, so it cannot be a
        # separately compiled component of the Section 5.2 schemes.
        design = Design(name="bad", components=[suite["main"]])
        with pytest.raises(DeploymentError):
            design.compile("controlled")

    def test_all_strategies_share_session_analyses(self, main_design):
        before = main_design.context.stats()["analyses"]
        main_design.compile("controlled")
        main_design.compile("concurrent")
        after = main_design.context.stats()["analyses"]
        assert after == before  # compiling added no new analysis work
