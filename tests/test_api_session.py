"""The Design session facade: constructors, caching, verdicts, backends."""

from __future__ import annotations

import pytest

from repro import Design, analyze
from repro.api.backends import VerificationError
from repro.api.results import Verdict
from repro.api.session import AnalysisContext
from repro.lang.builder import ProcessBuilder, const, signal
from repro.library.generators import pipeline_network
from repro.library.producer_consumer import normalized_suite
from repro.properties.compilable import ProcessAnalysis

FILTER_SOURCE = """
process filter (y) returns (x) {
  local z;
  x := true when (y /= z);
  z := y pre true;
}
"""

PROGRAM_SOURCE = """
process filter (y) returns (x) {
  local z;
  x := true when (y /= z);
  z := y pre true;
}
process top (y) returns (x) {
  (x) := filter(y);
}
"""


def _filter_builder() -> ProcessBuilder:
    builder = ProcessBuilder("filter", inputs=["y"], outputs=["x"])
    builder.local("z")
    builder.define("x", const(True).when(signal("y").ne(signal("z"))))
    builder.define("z", signal("y").pre(True))
    return builder


class TestConstructors:
    def test_from_source_single_process(self):
        design = Design.from_source(FILTER_SOURCE)
        assert design.name == "filter"
        assert [component.name for component in design.components] == ["filter"]

    def test_from_source_selects_root_processes(self):
        design = Design.from_source(PROGRAM_SOURCE)
        # `top` instantiates `filter`, so only `top` is a component ...
        assert [component.name for component in design.components] == ["top"]
        # ... and `filter` is resolvable from the registry.
        assert design.verify("endochrony")

    def test_from_source_explicit_component_selection(self):
        design = Design.from_source(PROGRAM_SOURCE, components=["filter"])
        assert [component.name for component in design.components] == ["filter"]
        with pytest.raises(ValueError):
            Design.from_source(PROGRAM_SOURCE, components=["missing"])

    def test_from_builder(self):
        design = Design.from_builder(_filter_builder())
        assert design.name == "filter"
        assert design.verify("endochrony")

    def test_add_component_chains_and_accepts_source(self):
        suite = normalized_suite()
        design = (
            Design(name="main")
            .add_component(suite["producer"])
            .add_component(suite["consumer"])
        )
        assert len(design.components) == 2
        assert design.composition.name == "main"

    def test_empty_design_rejects_composition(self):
        with pytest.raises(ValueError):
            Design(name="empty").composition


class TestSharedContext:
    def test_component_analyses_are_memoized(self):
        suite = normalized_suite()
        design = Design(name="main", components=[suite["producer"], suite["consumer"]])
        first = design.component_analyses()
        second = design.component_analyses()
        assert all(a is b for a, b in zip(first, second))

    def test_one_bdd_manager_across_components(self):
        suite = normalized_suite()
        design = Design(name="main", components=[suite["producer"], suite["consumer"]])
        managers = {id(analysis.algebra.manager) for analysis in design.component_analyses()}
        managers.add(id(design.analysis.algebra.manager))
        assert managers == {id(design.context.manager)}

    def test_criterion_reuses_component_analyses(self):
        suite = normalized_suite()
        design = Design(name="main", components=[suite["producer"], suite["consumer"]])
        analyses = design.component_analyses()
        verdict = design.criterion()
        assert verdict.weakly_hierarchic()
        # the criterion consumed the memoized analyses, not fresh ones
        assert design.context.analysis(design.components[0]) is analyses[0]

    def test_verdicts_are_cached_per_property_and_method(self):
        suite = normalized_suite()
        design = Design(name="main", components=[suite["producer"], suite["consumer"]])
        first = design.verify("weak-endochrony")
        second = design.verify("weak-endochrony")
        assert first is second
        assert design.verify("weak-endochrony", method="explicit") is not first

    def test_adding_a_component_invalidates_composed_artefacts(self):
        suite = normalized_suite()
        design = Design(name="main", components=[suite["producer"]])
        cached = design.verify("compilable")
        design.add_component(suite["consumer"])
        assert design.verify("compilable") is not cached
        assert len(design.composition.inputs) >= 2

    def test_context_shared_between_designs(self):
        context = AnalysisContext()
        suite = normalized_suite()
        left = Design(name="left", components=[suite["producer"]], context=context)
        right = Design(name="right", components=[suite["producer"]], context=context)
        assert left.component_analyses()[0] is right.component_analyses()[0]


class TestVerifyBackends:
    @pytest.fixture(scope="class")
    def main_design(self):
        suite = normalized_suite()
        return Design(name="main", components=[suite["producer"], suite["consumer"]])

    def test_static_explicit_and_symbolic_agree(self, main_design):
        static = main_design.verify("weak-endochrony", method="static")
        explicit = main_design.verify("weak-endochrony", method="explicit")
        symbolic = main_design.verify("weak-endochrony", method="symbolic")
        assert static.holds and explicit.holds and symbolic.holds
        assert static.cost.states == 0  # the whole point of Theorem 1
        assert explicit.cost.states > 0

    def test_auto_prefers_static(self, main_design):
        verdict = main_design.verify("weak-endochrony", method="auto")
        assert verdict.method == "static"

    def test_auto_falls_back_to_model_checking(self):
        # x and y are unrelated inputs: two hierarchy roots, criterion fails,
        # yet the process is weakly endochronous (independent reactions commute).
        builder = ProcessBuilder("free2", inputs=["x", "y"], outputs=["u", "v"])
        builder.define("u", signal("x"))
        builder.define("v", signal("y"))
        design = Design.from_builder(builder)
        verdict = design.verify("weak-endochrony")
        # the model-checking fallback runs on the compiled reaction engine
        assert verdict.method == "compiled"
        assert verdict.holds
        assert "fell back" in verdict.diagnostics[0].name

    def test_non_blocking_explicit_and_symbolic_agree(self, main_design):
        explicit = main_design.verify("non-blocking", method="explicit")
        symbolic = main_design.verify("non-blocking", method="symbolic")
        assert explicit.holds and symbolic.holds
        assert symbolic.method == "symbolic"

    def test_isochrony_static_via_theorem_1(self, main_design):
        verdict = main_design.verify("isochrony")
        assert verdict.holds
        assert verdict.method == "static"

    def test_isochrony_explicit_on_two_components(self, main_design):
        verdict = main_design.verify(
            "isochrony",
            method="explicit",
            input_flows={"a": [True, False], "b": [False, True]},
            max_instants=4,
        )
        assert isinstance(verdict, Verdict)
        assert verdict.holds

    def test_hierarchic_reports_root_count(self, main_design):
        verdict = main_design.verify("hierarchic")
        assert not verdict.holds  # producer|consumer keeps two roots
        assert "2 roots" in verdict.diagnostics[0].detail

    def test_symbolic_agrees_with_explicit_on_truncated_lts(self):
        """Truncating max_states must not invent BDD-reachable deadlock states."""
        from repro.library.ltta import normalized_suite as ltta_suite

        design = Design.from_process(ltta_suite()["ltta"])
        explicit = design.verify("non-blocking", method="explicit", max_states=4)
        symbolic = design.verify("non-blocking", method="symbolic", max_states=4)
        assert explicit.holds == symbolic.holds
        cross_check = design.verify("weak-endochrony", method="symbolic", max_states=4)
        assert cross_check.diagnostics[-1].holds  # BDD reachability == exploration

    def test_alias_spellings_share_one_cache_entry(self, main_design):
        assert main_design.verify("weak_endochrony") is main_design.verify("weak-endochrony")

    def test_explicit_composition_parameter(self):
        components, composition = pipeline_network(3)
        design = Design(
            name=composition.name, components=list(components), composition=composition
        )
        assert design.composition is composition
        # changing the component list discards the injected composition
        design.add_component(components[0])
        assert design.composition is not composition

    def test_isochrony_auto_marks_inconclusive_without_fallback(self):
        from repro.lang.builder import ProcessBuilder, signal

        builder = ProcessBuilder("free2", inputs=["x", "y"], outputs=["u", "v"])
        builder.define("u", signal("x"))
        builder.define("v", signal("y"))
        design = Design.from_builder(builder)
        verdict = design.verify("isochrony")  # single component, no flows
        assert not verdict.holds
        assert "NOT disproved" in verdict.diagnostics[0].name

    def test_property_aliases_and_errors(self, main_design):
        assert main_design.verify("weakly_endochronous").holds
        with pytest.raises(VerificationError):
            main_design.verify("no-such-property")
        with pytest.raises(VerificationError):
            main_design.verify("compilable", method="explicit")
        with pytest.raises(VerificationError):
            main_design.verify("weak-endochrony", method="sigali")

    def test_verdict_diagnostics_carry_reported_constraints(self, main_design):
        verdict = main_design.verify("weakly-hierarchic")
        constraints = [d for d in verdict.diagnostics if d.name == "reported clock constraints"]
        assert constraints and any("[b]" in text for text in constraints[0].witness)


class TestCanonicalAnalyze:
    def test_analyze_accepts_builder_and_source(self):
        from_builder = analyze(_filter_builder())
        from_source = analyze(FILTER_SOURCE)
        assert from_builder.summary() == from_source.summary()

    def test_process_analysis_of_is_a_deprecated_alias(self):
        definition = _filter_builder().build()
        with pytest.warns(DeprecationWarning):
            analysis = ProcessAnalysis.of(definition)
        assert analysis.summary() == analyze(definition).summary()

    def test_analyze_with_context_memoizes(self):
        context = AnalysisContext()
        definition = _filter_builder().build()
        assert analyze(definition, context=context) is analyze(definition, context=context)


class TestScaling:
    def test_pipeline_design_matches_flat_criterion(self):
        components, composition = pipeline_network(4)
        design = Design(name=composition.name, components=list(components))
        verdict = design.verify("weakly-hierarchic")
        assert verdict.holds
        assert verdict.cost.components == 4
        assert design.summary()["components"].keys() == {c.name for c in components}
