"""The artifact graph: tiers, codecs, dependency tracking, invalidation."""

from __future__ import annotations

import pytest

from repro.api.artifacts import ArtifactGraph, verdict_kind


class DictStore:
    """A minimal in-memory object store speaking the graph's store protocol."""

    def __init__(self):
        self.objects = {}
        self.reads = 0
        self.writes = 0

    def get(self, digest, kind):
        self.reads += 1
        return self.objects.get((digest, kind))

    def put(self, digest, kind, payload):
        self.writes += 1
        self.objects[(digest, kind)] = payload


def test_memory_tier_computes_once():
    graph = ArtifactGraph()
    calls = []
    for _ in range(3):
        value = graph.resolve("analysis", "d1", compute=lambda: calls.append(1) or "A")
        assert value == "A"
    assert len(calls) == 1
    counters = graph.counters["analysis"]
    assert counters["computed"] == 1 and counters["hits"] == 2


def test_none_is_a_legitimate_artifact_value():
    """A persisted negative answer must not be recomputed on every lookup."""
    graph = ArtifactGraph()
    calls = []
    for _ in range(2):
        value = graph.resolve("compiled", "d1", compute=lambda: calls.append(1))
        assert value is None
    assert len(calls) == 1


def test_store_tier_round_trip_with_codecs():
    store = DictStore()
    graph = ArtifactGraph(store=store)
    value = graph.resolve(
        "diagnosis", "d1", compute=lambda: {"roots": 1}, kind="diagnosis",
        encode=lambda v: {"roots": v["roots"]},
        decode=lambda payload: {"roots": int(payload["roots"])},
    )
    assert value == {"roots": 1}
    assert store.writes == 1

    # a second graph over the same store answers without computing
    warm = ArtifactGraph(store=store)
    reloaded = warm.resolve(
        "diagnosis", "d1", compute=lambda: pytest.fail("must not compute"),
        kind="diagnosis", decode=lambda payload: {"roots": int(payload["roots"])},
    )
    assert reloaded == {"roots": 1}
    assert warm.counters["diagnosis"]["store_hits"] == 1


def test_decode_failure_is_a_miss_not_an_answer():
    store = DictStore()
    store.put("d1", "diagnosis", {"garbage": True})
    graph = ArtifactGraph(store=store)
    value = graph.resolve(
        "diagnosis", "d1", compute=lambda: "fresh", kind="diagnosis",
        encode=lambda v: {"value": v},
        decode=lambda payload: payload["roots"],  # KeyError -> miss
    )
    assert value == "fresh"
    counters = graph.counters["diagnosis"]
    assert counters["invalid"] == 1 and counters["computed"] == 1
    # the recompute healed the stored object
    assert store.objects[("d1", "diagnosis")] == {"value": "fresh"}


def test_compute_failures_are_not_cached():
    graph = ArtifactGraph()
    attempts = []

    def compute():
        attempts.append(1)
        if len(attempts) == 1:
            raise ValueError("transient")
        return "ok"

    with pytest.raises(ValueError):
        graph.resolve("lts", "d1", compute=compute)
    assert graph.resolve("lts", "d1", compute=compute) == "ok"
    assert len(attempts) == 2


def test_dependency_edges_are_recorded_and_invalidation_cascades():
    graph = ArtifactGraph()

    def component(digest):
        return graph.resolve("analysis", digest, compute=lambda: f"analysis-{digest}")

    def verdict():
        return graph.resolve(
            "verdict", "design",
            compute=lambda: (component("c1"), component("c2"), "verdict"),
        )

    verdict()
    assert graph.dependencies_of(("design", "verdict", "")) == (
        ("c1", "analysis", ""),
        ("c2", "analysis", ""),
    )

    # invalidating one component drops it AND the dependent verdict, not c2
    dropped = graph.invalidate("c1")
    assert dropped == 2
    assert graph.counters["analysis"]["invalidated"] == 1
    assert graph.counters["verdict"]["invalidated"] == 1
    assert graph.nodes("analysis") == [(("c2", "analysis", ""), "analysis-c2")]

    # re-resolving recomputes exactly the dropped nodes
    verdict()
    assert graph.counters["analysis"]["computed"] == 3  # c1, c2, c1 again
    assert graph.counters["verdict"]["computed"] == 2


def test_invalidate_unknown_digest_is_a_no_op():
    graph = ArtifactGraph()
    graph.resolve("analysis", "d1", compute=lambda: "A")
    assert graph.invalidate("unknown") == 0
    assert graph.counters["analysis"]["hits"] == 0


def test_fingerprints_separate_alpha_variants_in_memory():
    """Same digest + different fingerprint = distinct memory nodes."""
    graph = ArtifactGraph()
    first = graph.resolve("analysis", "d1", "spelling-a", compute=lambda: "A")
    second = graph.resolve("analysis", "d1", "spelling-b", compute=lambda: "B")
    assert (first, second) == ("A", "B")
    assert graph.counters["analysis"]["computed"] == 2
    # but invalidation by digest drops both spellings
    assert graph.invalidate("d1") == 2


def test_stats_are_json_safe_and_per_stage():
    import json

    store = DictStore()
    graph = ArtifactGraph(store=store)
    graph.resolve("compiled", "d1", kind="compiled",
                  compute=lambda: "value", encode=lambda v: {"v": v})
    payload = graph.stats()
    assert json.dumps(payload)
    assert payload["stages"]["compiled"]["stored"] == 1
    assert payload["nodes"] == 1


def test_verdict_kind_is_stable_and_query_sensitive():
    kind = verdict_kind("non-blocking", "compiled", "[]")
    assert kind.startswith("verdict-") and len(kind) == len("verdict-") + 16
    assert kind == verdict_kind("non-blocking", "compiled", "[]")
    assert kind != verdict_kind("non-blocking", "explicit", "[]")

    # and it is the very kind the ArtifactStore files verdicts under
    from repro.service.store import ArtifactStore

    assert ArtifactStore.query_kind("non-blocking", "compiled", "[]") == kind
