"""Backend-differential suite: the array kernel against the reference oracle.

The pluggable-kernel contract (:class:`repro.bdd.backend.BDDBackend`) is not
just "same truth tables": every backend owes the *same satisfying
assignments in the same order* and *byte-identical canonical dumps* (and
therefore equal artifact digests).  This suite enforces that three ways:

* **property level** — random straight-line boolean programs built on both
  backends side by side (hypothesis), with the array kernel also run in
  forced-vectorized mode (``scalar_budget=0``) so the numpy paths, not the
  inherited scalar fallbacks, are what faces the oracle;
* **corpus level** — the committed 60-design corpus re-verified under an
  array-backed :class:`~repro.api.session.AnalysisContext`: the recorded
  verdicts and design digests came from the reference kernel, so zero drift
  *is* the differential verdict;
* **pipeline level** — seeded :mod:`repro.gen` designs pushed through the
  full verdict matrix under both backends, comparing every verdict and the
  compiled step relation's payload bytes.

CI's ``backend-differential`` job additionally reruns the 200-design
``repro.gen differential`` matrix with ``REPRO_BDD_BACKEND=array``; the
seed subset here keeps the tier-1 suite fast (``REPRO_DIFFERENTIAL_SEEDS``
widens it).
"""

import hashlib
import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.session import AnalysisContext
from repro.bdd.backend import available_backends, create_manager, load_manager
from repro.gen.corpus import Corpus, check_corpus
from repro.gen.differential import run_design
from repro.gen.topologies import design_space

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_CORPUS = REPO_ROOT / "corpus" / "corpus.json"

#: seeds for the in-suite pipeline differential (CI's dedicated job runs 200)
DIFFERENTIAL_SEEDS = range(int(os.environ.get("REPRO_DIFFERENTIAL_SEEDS", "10")))

VARIABLES = ("p", "q", "r", "s", "t")

_programs = st.lists(
    st.tuples(
        st.sampled_from(("and", "or", "xor", "implies", "iff", "not")),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=20,
)

_assignments = st.fixed_dictionaries(
    {}, optional={name: st.booleans() for name in VARIABLES}
)


def _build(manager, program):
    pool = [manager.var(name) for name in VARIABLES]
    for operation, left_index, right_index in program:
        left = pool[left_index % len(pool)]
        right = pool[right_index % len(pool)]
        pool.append(~left if operation == "not" else manager.apply(operation, left, right))
    return pool[-1]


def _array_managers():
    """The array kernel in its default hybrid mode and forced-vectorized."""
    return [
        ("array", create_manager(VARIABLES, backend="array")),
        ("array[vectorized]", create_manager(VARIABLES, backend="array", scalar_budget=0)),
    ]


class TestPropertyDifferential:
    """Random functions on both backends: same answers, same order, same bytes."""

    @given(program=_programs)
    @settings(max_examples=60, deadline=None)
    def test_queries_and_dump_agree(self, program):
        reference = create_manager(VARIABLES, backend="reference")
        expected_node = _build(reference, program)
        expected_rows = list(reference.satisfy_all(expected_node, VARIABLES))
        expected_matrix = reference.satisfy_matrix(expected_node, VARIABLES)
        expected_dump = reference.dump([expected_node])
        for label, manager in _array_managers():
            node = _build(manager, program)
            # same satisfying assignments, in the same order (not as sets)
            assert list(manager.satisfy_all(node, VARIABLES)) == expected_rows, label
            assert manager.satisfy_matrix(node, VARIABLES) == expected_matrix, label
            assert manager.count(node, VARIABLES) == len(expected_rows), label
            assert manager.support(node) == reference.support(expected_node), label
            assert manager.satisfy_one(node) == reference.satisfy_one(expected_node), label
            # byte-identical canonical serialization => equal artifact digests
            assert manager.dump([node]) == expected_dump, label

    @given(program=_programs, assignment=_assignments)
    @settings(max_examples=60, deadline=None)
    def test_restrict_agrees(self, program, assignment):
        reference = create_manager(VARIABLES, backend="reference")
        expected = reference.dump(
            [reference.restrict(_build(reference, program), assignment)]
        )
        for label, manager in _array_managers():
            node = manager.restrict(_build(manager, program), assignment)
            assert manager.dump([node]) == expected, label

    @given(program=_programs)
    @settings(max_examples=30, deadline=None)
    def test_cross_backend_load_is_lossless(self, program):
        # a payload dumped by either kernel loads into the other unchanged —
        # warm artifact stores stay valid when a deployment flips backends
        reference = create_manager(VARIABLES, backend="reference")
        payload = reference.dump([_build(reference, program)])
        manager, (root,) = load_manager(payload, backend="array")
        assert manager.backend_name == "array"
        assert manager.dump([root]) == payload
        back, (again,) = load_manager(manager.dump([root]), backend="reference")
        assert back.dump([again]) == payload


class TestCorpusDifferential:
    """The committed corpus, recorded by the reference kernel, re-verified
    under the array kernel: zero digest drift, zero verdict drift."""

    def test_committed_corpus_is_clean_under_the_array_backend(self):
        corpus = Corpus.load(COMMITTED_CORPUS)
        assert len(corpus) >= 50
        drift = check_corpus(corpus, context=AnalysisContext(bdd_backend="array"))
        assert drift == [], [item.describe() for item in drift]


class TestPipelineDifferential:
    """Seeded generated designs through the full verdict matrix, both backends."""

    @pytest.mark.parametrize("generated", design_space(DIFFERENTIAL_SEEDS), ids=lambda g: g.name)
    def test_verdicts_and_compiled_payloads_agree(self, generated):
        contexts = {
            backend: AnalysisContext(bdd_backend=backend)
            for backend in available_backends()
        }
        results = {
            backend: run_design(generated, context=context)
            for backend, context in contexts.items()
        }
        reference = results["reference"]
        assert reference.agreed, [d.describe() for d in reference.disagreements]
        for backend, result in results.items():
            assert result.verdicts == reference.verdicts, backend
        # the compiled step relations must serialize to the same bytes
        digests = {}
        for backend, context in contexts.items():
            payloads = []
            for component in generated.components:
                abstraction = context.compiled(component)
                if abstraction is not None:
                    payloads.append(abstraction.to_payload())
            digests[backend] = hashlib.sha256(
                json.dumps(payloads, sort_keys=True).encode()
            ).hexdigest()
        assert len(set(digests.values())) == 1, digests
