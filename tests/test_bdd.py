"""Unit tests for the ROBDD engine and the boolean expression layer.

The core fixtures are parametrized over every registered backend
(:func:`repro.bdd.backend.available_backends`), so the reference manager and
the vectorized array kernel face the same unit suite.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.backend import available_backends, create_manager
from repro.bdd.bdd import BDDManager
from repro.bdd.expr import FALSE, TRUE, And, Iff, Implies, Not, Or, Var, Xor, conjunction, disjunction


@pytest.fixture(params=available_backends())
def manager(request):
    return create_manager(["a", "b", "c", "d"], backend=request.param)


class TestBDDBasics:
    def test_terminals(self, manager):
        assert manager.true.is_true()
        assert manager.false.is_false()
        assert manager.true != manager.false

    def test_variable_and_negation(self, manager):
        a = manager.var("a")
        assert not a.is_terminal()
        assert (~a).iff(manager.nvar("a")).is_true()

    def test_hash_consing_makes_equal_functions_identical(self, manager):
        a, b = manager.var("a"), manager.var("b")
        left = (a & b) | (a & ~b)
        assert left == a
        assert ((a | b) & (a | ~b)) == a

    def test_and_or_laws(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert (a & manager.true) == a
        assert (a & manager.false).is_false()
        assert (a | manager.false) == a
        assert (a | manager.true).is_true()
        assert (a & b) == (b & a)

    def test_xor_iff_implies(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert (a ^ a).is_false()
        assert a.iff(a).is_true()
        assert a.implies(a | b).is_true()
        assert not a.implies(b).is_true()

    def test_ite(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        ite = a.ite(b, c)
        assert ite.restrict({"a": True}) == b
        assert ite.restrict({"a": False}) == c

    def test_bool_conversion_is_rejected(self, manager):
        with pytest.raises(TypeError):
            bool(manager.var("a"))


class TestBDDQueries:
    def test_restrict(self, manager):
        a, b = manager.var("a"), manager.var("b")
        function = a & b
        assert function.restrict({"a": True}) == b
        assert function.restrict({"a": False}).is_false()

    def test_exists_forall(self, manager):
        a, b = manager.var("a"), manager.var("b")
        function = a & b
        assert function.exists(["a"]) == b
        assert function.forall(["a"]).is_false()
        assert (a | b).forall(["a"]) == b

    def test_compose(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        function = a & b
        composed = function.compose({"a": c | b})
        assert composed == ((c | b) & b)

    def test_rename(self, manager):
        a = manager.var("a")
        renamed = (a & manager.var("b")).rename({"a": "c"})
        assert renamed == (manager.var("c") & manager.var("b"))

    def test_support(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        assert (a & b).support() == {"a", "b"}
        assert ((a & b) | (a & ~b)).support() == {"a"}
        assert manager.true.support() == frozenset()

    def test_satisfy_one(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assignment = (a & ~b).satisfy_one()
        assert assignment == {"a": True, "b": False}
        assert (a & ~a).satisfy_one() is None

    def test_satisfy_all_and_count(self, manager):
        a, b = manager.var("a"), manager.var("b")
        function = a | b
        assignments = list(function.satisfy_all(["a", "b"]))
        assert len(assignments) == 3
        assert function.count(["a", "b"]) == 3
        assert function.count(["a", "b", "c"]) == 6

    def test_count_requires_support_coverage(self, manager):
        a, b = manager.var("a"), manager.var("b")
        with pytest.raises(ValueError):
            (a & b).count(["a"])

    def test_evaluate(self, manager):
        a, b = manager.var("a"), manager.var("b")
        function = a.iff(b)
        assert function.evaluate({"a": True, "b": True})
        assert not function.evaluate({"a": True, "b": False})

    def test_node_count_is_reduced(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        assert (a & b & c).node_count() == 3

    def test_implies_check_and_equivalence(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.implies_check(a & b, a)
        assert not manager.implies_check(a, a & b)
        assert manager.equivalent(a & b, b & a)


class TestBoolExpr:
    def test_evaluate_matches_bdd(self):
        manager = BDDManager()
        expression = Implies(And(Var("a"), Var("b")), Or(Var("a"), Var("c")))
        compiled = expression.to_bdd(manager)
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    assignment = {"a": a, "b": b, "c": c}
                    assert compiled.evaluate(assignment) == expression.evaluate(assignment)

    def test_constants(self):
        manager = BDDManager()
        assert TRUE.to_bdd(manager).is_true()
        assert FALSE.to_bdd(manager).is_false()

    def test_not_xor_iff(self):
        manager = BDDManager()
        expression = Iff(Xor(Var("a"), Var("b")), Not(Iff(Var("a"), Var("b"))))
        assert expression.to_bdd(manager).is_true()

    def test_conjunction_disjunction_helpers(self):
        manager = BDDManager()
        everything = conjunction(Var("a"), Var("b"), Var("c"))
        assert everything.to_bdd(manager).count(["a", "b", "c"]) == 1
        anything = disjunction(Var("a"), Var("b"))
        assert anything.to_bdd(manager).count(["a", "b"]) == 3
        assert conjunction().to_bdd(manager).is_true()
        assert disjunction().to_bdd(manager).is_false()

    def test_variables(self):
        expression = And(Var("a"), Or(Var("b"), Not(Var("c"))))
        assert expression.variables() == {"a", "b", "c"}


class TestManagerMaintenance:
    """The PR-3 manager upgrades: GC, reordering, sifting, bounded caches."""

    def test_satisfy_all_is_output_sensitive(self):
        # one cube over 20 variables: the walk must not expand 2^20 candidates
        manager = BDDManager([f"v{i}" for i in range(20)])
        cube = manager.true
        for index in range(20):
            variable = manager.var(f"v{index}")
            cube = cube & (variable if index % 2 else ~variable)
        solutions = list(cube.satisfy_all([f"v{i}" for i in range(20)]))
        assert len(solutions) == 1
        assert solutions[0]["v1"] is True and solutions[0]["v0"] is False

    def test_satisfy_all_requires_support_coverage(self):
        # same violation, same exception type as count()
        manager = BDDManager(["a", "b"])
        function = manager.var("a") & manager.var("b")
        with pytest.raises(ValueError):
            list(function.satisfy_all(["a"]))

    def test_collect_garbage_compacts_and_preserves(self):
        manager = BDDManager(["a", "b", "c"])
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        kept = (a & b) | c
        for _ in range(5):
            _junk = (a ^ b) & (b ^ c)  # dead intermediate nodes
        before = manager.size()
        manager.collect_garbage([kept])
        assert manager.size() < before
        assert kept.evaluate({"a": True, "b": True, "c": False})
        assert not kept.evaluate({"a": True, "b": False, "c": False})
        assert manager.stats()["gc_runs"] == 1

    def test_reorder_preserves_functions(self):
        manager = BDDManager(["x0", "y0", "x1", "y1"])
        function = (manager.var("x0") & manager.var("y0")) | (
            manager.var("x1") & manager.var("y1")
        )
        manager.reorder(["x0", "x1", "y0", "y1"], [function])
        for bits in range(16):
            assignment = {
                "x0": bool(bits & 1),
                "y0": bool(bits & 2),
                "x1": bool(bits & 4),
                "y1": bool(bits & 8),
            }
            expected = (assignment["x0"] and assignment["y0"]) or (
                assignment["x1"] and assignment["y1"]
            )
            assert function.evaluate(assignment) == expected

    def test_sift_shrinks_an_interleaving_sensitive_function(self):
        names = [f"a{i}" for i in range(4)] + [f"b{i}" for i in range(4)]
        manager = BDDManager(names)
        function = manager.false
        for index in range(4):
            function = function | (manager.var(f"a{index}") & manager.var(f"b{index}"))
        before = function.node_count()
        manager.sift([function])
        after = function.node_count()
        assert after < before
        for bits in range(256):
            assignment = {f"a{i}": bool(bits & (1 << i)) for i in range(4)}
            assignment.update({f"b{i}": bool(bits & (1 << (4 + i))) for i in range(4)})
            expected = any(assignment[f"a{i}"] and assignment[f"b{i}"] for i in range(4))
            assert function.evaluate(assignment) == expected

    def test_computed_table_is_bounded(self):
        manager = BDDManager([f"v{i}" for i in range(12)], computed_table_limit=64)
        function = manager.false
        for index in range(11):
            function = function | (manager.var(f"v{index}") & manager.var(f"v{index + 1}"))
        assert manager.stats()["cache_evictions"] > 0
        assert len(manager._apply_cache) <= 64


# -- property tests over every backend ----------------------------------------
#
# A random boolean function is a straight-line program: start from the
# declared variables, repeatedly combine two earlier results (or negate one).
# Deterministic, shrinkable, and it exercises sharing (earlier results are
# reused by later instructions).

_PROPERTY_VARIABLES = ("a", "b", "c", "d")

_programs = st.lists(
    st.tuples(
        st.sampled_from(("and", "or", "xor", "implies", "iff", "not")),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=16,
)


def _build(manager, program):
    pool = [manager.var(name) for name in _PROPERTY_VARIABLES]
    for operation, left_index, right_index in program:
        left = pool[left_index % len(pool)]
        right = pool[right_index % len(pool)]
        pool.append(~left if operation == "not" else manager.apply(operation, left, right))
    return pool[-1]


def _truth_table(manager, node):
    rows = []
    for bits in range(1 << len(_PROPERTY_VARIABLES)):
        assignment = {
            name: bool(bits & (1 << position))
            for position, name in enumerate(_PROPERTY_VARIABLES)
        }
        rows.append(manager.evaluate(node, assignment))
    return rows


class TestDumpRoundTripProperties:
    """Serialization survives the maintenance operations, on every backend."""

    @pytest.mark.parametrize("backend", available_backends())
    @given(program=_programs)
    @settings(max_examples=25, deadline=None)
    def test_round_trip_survives_collect_garbage(self, backend, program):
        manager = create_manager(_PROPERTY_VARIABLES, backend=backend)
        function = _build(manager, program)
        table = _truth_table(manager, function)
        payload_before = manager.dump([function])
        (function,) = manager.collect_garbage([function])
        payload_after = manager.dump([function])
        # the canonical dump is a function of the root *function*, so garbage
        # collection (which renumbers nodes) must not change a byte of it
        assert payload_after == payload_before
        loaded_manager, (root,) = type(manager).load(payload_after)
        assert _truth_table(loaded_manager, root) == table
        assert loaded_manager.dump([root]) == payload_after

    @pytest.mark.parametrize("backend", available_backends())
    @given(program=_programs)
    @settings(max_examples=25, deadline=None)
    def test_round_trip_survives_sift(self, backend, program):
        manager = create_manager(_PROPERTY_VARIABLES, backend=backend)
        function = _build(manager, program)
        table = _truth_table(manager, function)
        (function,) = manager.sift([function])
        payload = manager.dump([function])
        loaded_manager, (root,) = type(manager).load(payload)
        assert _truth_table(loaded_manager, root) == table
        assert loaded_manager.dump([root]) == payload


class TestSatisfyAllEdgeCases:
    """satisfy_all / satisfy_matrix corner cases, pinned on every backend."""

    @pytest.fixture(params=available_backends())
    def edge_manager(self, request):
        return create_manager(["a", "b", "c"], backend=request.param)

    def test_constant_true_enumerates_the_full_cube(self, edge_manager):
        rows = list(edge_manager.true.satisfy_all(["a", "b"]))
        assert rows == [
            {"a": False, "b": False},
            {"a": False, "b": True},
            {"a": True, "b": False},
            {"a": True, "b": True},
        ]
        assert edge_manager.satisfy_matrix(edge_manager.true, ["a", "b"]) == [
            [False, False],
            [False, True],
            [True, False],
            [True, True],
        ]

    def test_constant_false_enumerates_nothing(self, edge_manager):
        assert list(edge_manager.false.satisfy_all(["a", "b"])) == []
        assert edge_manager.satisfy_matrix(edge_manager.false, ["a", "b"]) == []

    def test_queried_variable_outside_the_support_expands_both_ways(self, edge_manager):
        function = edge_manager.var("a") & edge_manager.var("c")
        rows = list(function.satisfy_all(["a", "b", "c"]))
        # "b" is declared but not in the support: it is a don't-care, and the
        # enumeration expands it in level order, False branch first
        assert rows == [
            {"a": True, "b": False, "c": True},
            {"a": True, "b": True, "c": True},
        ]
        assert edge_manager.satisfy_matrix(function, ["a", "b", "c"]) == [
            [True, False, True],
            [True, True, True],
        ]

    def test_undeclared_queried_variable_expands_last(self, edge_manager):
        function = edge_manager.var("a")
        # "z" was never declared: it sits below every real level, so it
        # varies fastest — and both enumeration forms agree on that
        assert edge_manager.satisfy_matrix(function, ["a", "z"]) == [
            [True, False],
            [True, True],
        ]
        assert list(function.satisfy_all(["a", "z"])) == [
            {"a": True, "z": False},
            {"a": True, "z": True},
        ]

    def test_satisfy_matrix_requires_support_coverage(self, edge_manager):
        function = edge_manager.var("a") & edge_manager.var("b")
        with pytest.raises(ValueError):
            edge_manager.satisfy_matrix(function, ["a"])
