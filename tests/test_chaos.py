"""Chaos suite: the serving stack under deterministic injected faults.

The invariant every scenario pins — **correct or typed error, never a
wrong answer, never a hang**: under any :class:`repro.service.FaultPlan`
schedule, a query either returns a verdict identical (up to wall-clock
cost) to the fault-free run, or raises a typed
:class:`~repro.service.ServiceError` subclass the caller can act on.

Fault schedules are seeded, never drawn from wall-clock time or shared
:mod:`random` state, so every failure here replays exactly.  CI runs this
file under several ``REPRO_FAULT_PLAN`` seeds; the base seed below folds
that environment seed into every plan, so the matrix genuinely varies the
schedules while each single run stays reproducible.
"""

from __future__ import annotations

import asyncio
import copy
import json
import os
import signal
import tempfile
import threading
from pathlib import Path
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.library.generators import pipeline_network
from repro.service import (
    ArtifactStore,
    DeadlineExceeded,
    FaultInjected,
    FaultPlan,
    InlineBackend,
    ProcessPoolBackend,
    QueryFailed,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceServer,
    ServiceUnavailable,
    VerificationService,
)

FILTER_SOURCE = """
process filter (x) returns (y) {
  y := x when x;
}
"""

#: CI matrix entry point: REPRO_FAULT_PLAN's seed perturbs every plan here
ENV_PLAN = FaultPlan.from_env()
BASE_SEED = ENV_PLAN.seed if ENV_PLAN is not None else 0


def canonical(verdict) -> str:
    """A verdict's comparable form: everything but the wall-clock cost."""
    verdict = copy.deepcopy(dict(verdict))
    cost = verdict.get("cost")
    if isinstance(cost, dict):
        cost.pop("seconds", None)
    return json.dumps(verdict, sort_keys=True)


_BASELINES: dict = {}


def baseline(key: str, build, prop: str, method: str) -> str:
    """The fault-free canonical verdict for one query, computed once."""
    entry = _BASELINES.get((key, prop, method))
    if entry is None:
        service = VerificationService()
        digest = service.register(build(), name=key)
        entry = canonical(service.verify_blocking(digest, prop, method=method))
        service.close()
        _BASELINES[(key, prop, method)] = entry
    return entry


# ---------------------------------------------------------------------------
# the fault plan itself: determinism, independence, parsing
# ---------------------------------------------------------------------------

def test_fault_plan_same_seed_same_schedule():
    def draws(plan):
        return [plan._draw("exec") for _ in range(50)]

    first = FaultPlan(seed=11, rates={"exec": 0.6})
    second = FaultPlan(seed=11, rates={"exec": 0.6})
    assert draws(first) == draws(second)
    assert first.injected == second.injected
    other = FaultPlan(seed=12, rates={"exec": 0.6})
    assert draws(first) != draws(other)
    assert first.stats()["total_injected"] == sum(first.injected.values())


def test_fault_sites_draw_independently():
    exercised = FaultPlan(seed=3, rates={"exec": 0.5, "store_read": 0.9})
    untouched = FaultPlan(seed=3, rates={"exec": 0.5, "store_read": 0.9})
    for _ in range(40):
        exercised._draw("store_read")
    # hammering one site must not shift another site's schedule
    assert [exercised._draw("exec") for _ in range(30)] == [
        untouched._draw("exec") for _ in range(30)
    ]


def test_fault_plan_spec_parsing():
    plan = FaultPlan.from_spec("seed=7, store_read=0.3, exec.latency=0.5, latency=0.05")
    assert plan.seed == 7
    assert plan.latency == 0.05
    # only the latency mode is configured on exec, so a firing draw is latency
    fired = [plan.exec_fault() for _ in range(40)]
    assert ("latency", 0.05) in fired
    assert all(fault in (None, ("latency", 0.05)) for fault in fired)
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan.from_spec("bogus=1.0")
    with pytest.raises(ValueError, match="unknown mode"):
        FaultPlan(rates={"exec.bogus": 0.1})
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.from_spec("seed")


def test_fault_plan_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=42,connect=1.0")
    plan = FaultPlan.from_env()
    assert plan is not None
    assert plan.seed == 42
    assert plan.connect_fault() is True
    assert plan.injected["connect.refused"] == 1


def test_store_read_fault_modes_corrupt_the_text():
    text = '{"payload": [1, 2, 3], "holds": true}'
    torn_plan = FaultPlan(seed=5, rates={"store_read.torn": 1.0})
    torn = torn_plan.store_read(text)
    assert torn != text and text.startswith(torn)
    flip_plan = FaultPlan(seed=5, rates={"store_read.bitflip": 1.0})
    flipped = flip_plan.store_read(text)
    assert flipped != text and len(flipped) == len(text)
    error_plan = FaultPlan(seed=5, rates={"store_read.oserror": 1.0})
    with pytest.raises(OSError):
        error_plan.store_read(text)


# ---------------------------------------------------------------------------
# store faults: absorbed — never a wrong verdict, never an unhandled error
# ---------------------------------------------------------------------------

@given(
    seed=st.integers(0, 9_999),
    read_rate=st.sampled_from([0.2, 0.5]),
    write_rate=st.sampled_from([0.0, 0.3]),
)
@settings(max_examples=5, deadline=None, derandomize=True)
def test_store_faults_never_change_a_verdict(seed, read_rate, write_rate):
    expected_nb = baseline("filter", lambda: FILTER_SOURCE, "non-blocking", "compiled")
    expected_we = baseline("filter", lambda: FILTER_SOURCE, "weak-endochrony", "compiled")
    with tempfile.TemporaryDirectory() as root:
        store_root = Path(root) / "store"
        warm = VerificationService(store=ArtifactStore(store_root))
        digest = warm.register(FILTER_SOURCE)
        warm.verify_blocking(digest, "non-blocking", method="compiled")
        warm.close()

        plan = FaultPlan(
            seed=BASE_SEED * 100_000 + seed,
            rates={"store_read": read_rate, "store_write": write_rate},
        )
        chaotic = VerificationService(
            store=ArtifactStore(store_root, fault_plan=plan)
        )
        chaos_digest = chaotic.register(FILTER_SOURCE)
        assert chaos_digest == digest
        # store faults are absorbed as misses / lost cache writes: every
        # query must still SUCCEED, with the fault-free verdict
        verdict = chaotic.verify_blocking(chaos_digest, "non-blocking", method="compiled")
        assert canonical(verdict) == expected_nb
        verdict = chaotic.verify_blocking(chaos_digest, "weak-endochrony", method="compiled")
        assert canonical(verdict) == expected_we
        chaotic.close()


def test_corrupted_store_quarantines_heals_and_warm_starts(tmp_path):
    root = tmp_path / "store"
    cold = VerificationService(store=ArtifactStore(root))
    digest = cold.register(FILTER_SOURCE)
    expected = canonical(cold.verify_blocking(digest, "non-blocking", method="compiled"))
    cold.close()

    # fuzz every object on disk: torn in half or one byte flipped
    rng = Random(BASE_SEED + 7)
    objects = sorted((root / "objects").glob("*/*/*.json"))
    assert objects, "the cold run must have persisted artifacts"
    for path in objects:
        text = path.read_text(encoding="utf-8")
        if rng.random() < 0.5:
            path.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
        else:
            position = rng.randrange(len(text))
            flipped = "X" if text[position] != "X" else "Y"
            path.write_text(
                text[:position] + flipped + text[position + 1 :], encoding="utf-8"
            )

    healed_store = ArtifactStore(root)
    healed = VerificationService(store=healed_store)
    healed_digest = healed.register(FILTER_SOURCE)
    assert healed_digest == digest
    verdict = healed.verify_blocking(healed_digest, "non-blocking", method="compiled")
    assert canonical(verdict) == expected
    assert healed.computations == 1, "nothing on disk was trustworthy"
    assert healed_store.quarantined >= 1
    assert list((root / "corrupt").glob("*.json")), "corrupt objects are kept aside"
    healed.close()

    # the recomputation healed the store: a third run answers from disk
    warm = VerificationService(store=ArtifactStore(root))
    warm_digest = warm.register(FILTER_SOURCE)
    assert canonical(
        warm.verify_blocking(warm_digest, "non-blocking", method="compiled")
    ) == expected
    assert warm.computations == 0
    warm.close()


# ---------------------------------------------------------------------------
# backend faults: typed failures, crash recovery
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 9_999), rate=st.sampled_from([0.1, 0.3, 0.5]))
@settings(max_examples=5, deadline=None, derandomize=True)
def test_exec_faults_yield_correct_verdict_or_typed_error(seed, rate):
    expected = baseline("filter", lambda: FILTER_SOURCE, "non-blocking", "compiled")
    plan = FaultPlan(
        seed=BASE_SEED * 100_000 + seed,
        rates={"exec.exception": rate, "exec.latency": rate / 4},
        latency=0.001,
    )
    service = VerificationService(backend=InlineBackend(fault_plan=plan))
    try:
        digest = service.register(FILTER_SOURCE)
        successes = 0
        for _ in range(20):
            try:
                verdict = service.verify_blocking(digest, "non-blocking", method="compiled")
            except ServiceError as error:
                # the invariant's error half: typed, message-preserving
                assert isinstance(error, QueryFailed)
                assert FaultInjected.__name__ in str(error)
            else:
                assert canonical(verdict) == expected
                successes += 1
        assert successes >= 1, "a sub-certain fault rate must let retries through"
        assert service.failures == 20 - successes, "failed queries are never cached"
    finally:
        service.close()


def test_injected_worker_crash_recovers_with_one_rebuild():
    plan = FaultPlan(seed=BASE_SEED, rates={"exec.crash": 1.0})
    backend = ProcessPoolBackend(workers=1, fault_plan=plan)
    service = VerificationService(backend=backend)
    digest = service.register(FILTER_SOURCE)
    verdict = service.verify_blocking(digest, "non-blocking", method="compiled")
    assert verdict["holds"] is True
    described = service.stats()["backend"]
    assert described["pool_rebuilds"] == 1
    assert described["redispatched"] == 1
    assert plan.injected["exec.crash"] == 1
    service.close()


def test_real_worker_kill_mid_query_recovers():
    # a latency fault parks the query inside the worker long enough for the
    # test to SIGKILL the real worker process out from under it
    plan = FaultPlan(seed=BASE_SEED, rates={"exec.latency": 1.0}, latency=2.0)
    backend = ProcessPoolBackend(workers=1, fault_plan=plan)
    service = VerificationService(backend=backend)
    digest = service.register(FILTER_SOURCE)

    async def scenario():
        query = asyncio.ensure_future(
            service.verify(digest, "non-blocking", method="compiled")
        )
        pids = {}
        for _ in range(200):
            await asyncio.sleep(0.01)
            pids = dict(backend._pool._processes)
            if pids:
                break
        assert pids, "the pool never started a worker"
        await asyncio.sleep(0.3)  # the worker is asleep in its injected latency
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        return await query

    verdict = asyncio.run(scenario())
    assert verdict["holds"] is True
    assert service.stats()["backend"]["pool_rebuilds"] >= 1
    service.close()


# ---------------------------------------------------------------------------
# deadlines and admission control
# ---------------------------------------------------------------------------

def test_deadline_is_typed_and_keeps_the_shared_computation():
    plan = FaultPlan(seed=BASE_SEED, rates={"exec.latency": 1.0}, latency=0.4)
    service = VerificationService(backend=InlineBackend(fault_plan=plan))
    digest = service.register(FILTER_SOURCE)

    async def scenario():
        with pytest.raises(DeadlineExceeded, match="deadline"):
            await service.verify(digest, "non-blocking", method="compiled", deadline=0.05)
        # the computation survived the caller's deadline: re-asking joins it
        return await service.verify(digest, "non-blocking", method="compiled")

    verdict = asyncio.run(scenario())
    assert verdict["holds"] is True
    assert service.computations == 1, "the deadline must not cancel shared work"
    assert service.deadline_exceeded == 1
    assert service.coalesced == 1
    service.close()


def test_admission_control_rejects_with_a_retry_after_hint():
    plan = FaultPlan(seed=BASE_SEED, rates={"exec.latency": 1.0}, latency=0.4)
    service = VerificationService(
        backend=InlineBackend(fault_plan=plan), max_inflight=1, max_queue=0
    )
    digest_a = service.register(FILTER_SOURCE)
    _, composition = pipeline_network(2)
    digest_b = service.register([composition], name="pipeline_2")

    async def scenario():
        first = asyncio.ensure_future(
            service.verify(digest_a, "non-blocking", method="compiled")
        )
        await asyncio.sleep(0.05)  # let it occupy the only in-flight slot
        with pytest.raises(ServiceOverloaded) as rejection:
            await service.verify(digest_b, "non-blocking", method="compiled")
        assert rejection.value.retry_after is not None
        assert rejection.value.retry_after > 0
        # a duplicate of the in-flight query is a rider, never rejected
        rider = await service.verify(digest_a, "non-blocking", method="compiled")
        return await first, rider

    verdict, rider = asyncio.run(scenario())
    assert canonical(verdict) == canonical(rider)
    assert service.rejected == 1
    assert service.coalesced == 1
    assert service.computations == 1
    assert service.stats()["admission"]["rejected"] == 1
    service.close()


# ---------------------------------------------------------------------------
# transport faults: bounded retries, typed exhaustion
# ---------------------------------------------------------------------------

@pytest.fixture()
def chaos_server(tmp_path):
    socket_path = tmp_path / "chaos.sock"
    service = VerificationService()
    server = ServiceServer(service, socket_path)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever(ready)), daemon=True
    )
    thread.start()
    assert ready.wait(10), "server did not come up"
    yield str(socket_path), service
    try:
        ServiceClient(socket_path).shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(10)
    assert not thread.is_alive()


def test_transport_faults_yield_correct_verdict_or_typed_error(chaos_server):
    socket_path, _service = chaos_server
    steady = ServiceClient(socket_path)
    digest = steady.register(FILTER_SOURCE)
    expected = canonical(steady.verify(digest=digest, prop="non-blocking", method="compiled"))

    total_retried = 0
    for offset in range(3):
        seed = BASE_SEED * 10 + offset
        plan = FaultPlan(seed=seed, rates={"connect": 0.3, "response": 0.3})
        client = ServiceClient(
            socket_path, retries=4, backoff=0.001, jitter_seed=seed, fault_plan=plan
        )
        outcomes = []
        for _ in range(10):
            try:
                verdict = client.verify(digest=digest, prop="non-blocking", method="compiled")
            except ServiceError as error:
                # only the typed exhaustion error is acceptable
                assert isinstance(error, ServiceUnavailable)
                assert socket_path in str(error)
                outcomes.append("unavailable")
            else:
                assert canonical(verdict) == expected
                outcomes.append("ok")
        assert "ok" in outcomes, "retries must get some queries through"
        total_retried += client.retried
    assert total_retried > 0, "the fault rates guarantee transport retries"
