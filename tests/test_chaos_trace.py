"""Chaos × observability: injected faults show up in the query's trace.

The chaos suite (:mod:`tests.test_chaos`) pins the *correctness* invariant
under injected faults — correct verdict or typed error.  This file pins the
*observability* half: when a fault fires inside a traced query, the
recovery is visible as tagged events **in the originating query's trace**,
on both backends —

* store corruption → a ``store.quarantine`` event where the corrupt read
  happened and a ``store.heal`` event where the recomputed artifact was
  rewritten;
* a worker crash on the process pool → ``backend.crash`` and
  ``backend.redispatch`` events on the computing span, with the retry's
  ``backend.dispatch``/``worker.exec`` spans in the same trace;
* on the inline backend a crash degrades to an injected exception — the
  ``fault.injected`` event still lands on the executing span.

Fault schedules are seeded (rate-1.0 sites where a single deterministic
firing is wanted), so every scenario replays exactly.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import trace as obs_trace
from repro.service import (
    ArtifactStore,
    FaultPlan,
    InlineBackend,
    ProcessPoolBackend,
    QueryFailed,
    VerificationService,
)

FILTER_SOURCE = """
process filter (x) returns (y) {
  y := x when x;
}
"""


@pytest.fixture(autouse=True)
def clean_obs():
    obs_trace.reset()
    yield
    obs_trace.reset()


def trace_of(tracer, span_name: str):
    """All spans of the (single) trace containing a span named ``span_name``."""
    matches = [span for span in tracer.spans if span["name"] == span_name]
    assert matches, f"no {span_name!r} span collected"
    trace_ids = {span["trace_id"] for span in matches}
    assert len(trace_ids) == 1, f"{span_name!r} spans span multiple traces"
    return tracer.trace(trace_ids.pop())


def events_of(spans):
    """``(span_name, event_name, event_tags)`` triples across ``spans``."""
    return [
        (span["name"], event["name"], event.get("tags", {}))
        for span in spans
        for event in span["events"]
    ]


def corrupt_store_objects(root) -> int:
    objects = sorted((root / "objects").glob("*/*/*.json"))
    assert objects, "the cold run must have persisted artifacts"
    for path in objects:
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
    return len(objects)


def persist_cold_run(root) -> None:
    cold = VerificationService(store=ArtifactStore(root))
    digest = cold.register(FILTER_SOURCE)
    cold.verify_blocking(digest, "non-blocking", method="compiled")
    cold.close()


# ---------------------------------------------------------------------------
# store corruption: quarantine + heal, in-trace
# ---------------------------------------------------------------------------

def test_corruption_and_heal_are_events_in_the_query_trace_inline(tmp_path):
    root = tmp_path / "store"
    persist_cold_run(root)
    corrupt_store_objects(root)

    obs_trace.configure(enabled=True)
    service = VerificationService(store=ArtifactStore(root))
    try:
        digest = service.register(FILTER_SOURCE)
        verdict = service.verify_blocking(digest, "non-blocking", method="compiled")
        assert verdict["holds"] is True
        assert service.computations == 1, "nothing on disk was trustworthy"
    finally:
        service.close()

    spans = trace_of(obs_trace.get_tracer(), "service.verify")
    triples = events_of(spans)
    quarantines = [t for t in triples if t[1] == "store.quarantine"]
    heals = [t for t in triples if t[1] == "store.heal"]
    assert quarantines, "the corrupt read must be visible in the trace"
    assert heals, "the self-heal rewrite must be visible in the trace"
    # quarantines happen where the read happened, heals where the write did
    assert all(span_name == "store.get" for span_name, _, _ in quarantines)
    assert all(span_name == "store.put" for span_name, _, _ in heals)
    # the store's own counters agree with what the trace shows
    store_stats = service.stats()["store"]
    assert store_stats["quarantined"] >= len(quarantines)
    assert store_stats["healed"] >= len(heals)


def test_corruption_and_heal_are_events_in_the_query_trace_process(tmp_path):
    root = tmp_path / "store"
    persist_cold_run(root)
    corrupt_store_objects(root)

    obs_trace.configure(enabled=True)
    service = VerificationService(
        store=ArtifactStore(root),
        backend=ProcessPoolBackend(workers=1, store_root=root),
    )
    try:
        digest = service.register(FILTER_SOURCE)
        verdict = service.verify_blocking(digest, "non-blocking", method="compiled")
        assert verdict["holds"] is True
    finally:
        service.close()

    spans = trace_of(obs_trace.get_tracer(), "service.verify")
    triples = events_of(spans)
    assert any(t[1] == "store.quarantine" for t in triples)
    assert any(t[1] == "store.heal" for t in triples)
    # at least one quarantine was observed by the worker process — its
    # shipped spans joined the same trace
    pids = {span["pid"] for span in spans}
    assert len(pids) == 2, "the trace must cross the process boundary"


# ---------------------------------------------------------------------------
# worker crash: crash + redispatch, in-trace
# ---------------------------------------------------------------------------

def test_worker_crash_and_redispatch_are_events_in_the_query_trace():
    plan = FaultPlan(seed=0, rates={"exec.crash": 1.0})
    obs_trace.configure(enabled=True)
    service = VerificationService(
        backend=ProcessPoolBackend(workers=1, fault_plan=plan)
    )
    try:
        digest = service.register(FILTER_SOURCE)
        verdict = service.verify_blocking(digest, "non-blocking", method="compiled")
        assert verdict["holds"] is True
        assert plan.injected["exec.crash"] == 1
    finally:
        service.close()

    tracer = obs_trace.get_tracer()
    spans = trace_of(tracer, "service.verify")
    triples = events_of(spans)
    crashes = [t for t in triples if t[1] == "backend.crash"]
    redispatches = [t for t in triples if t[1] == "backend.redispatch"]
    assert len(crashes) == 1 and len(redispatches) == 1
    # both land on the span that owns the dispatch loop
    assert crashes[0][0] == "service.compute"
    assert redispatches[0][0] == "service.compute"
    assert crashes[0][2]["attempt"] == 0
    assert redispatches[0][2]["attempt"] == 1
    # both dispatch attempts are spans of the same trace; only the clean
    # retry produced a worker.exec span (the crashed worker died mid-task)
    dispatches = [span for span in spans if span["name"] == "backend.dispatch"]
    assert [span["tags"]["attempt"] for span in dispatches] == [0, 1]
    workers = [span for span in spans if span["name"] == "worker.exec"]
    assert len(workers) == 1
    assert workers[0]["parent_id"] == dispatches[1]["span_id"]


def test_inline_crash_degrades_to_a_traced_injected_exception():
    plan = FaultPlan(seed=0, rates={"exec.crash": 1.0})
    obs_trace.configure(enabled=True)
    service = VerificationService(backend=InlineBackend(fault_plan=plan))
    try:
        digest = service.register(FILTER_SOURCE)
        with pytest.raises(QueryFailed):
            service.verify_blocking(digest, "non-blocking", method="compiled")
    finally:
        service.close()

    spans = trace_of(obs_trace.get_tracer(), "service.verify")
    triples = events_of(spans)
    injections = [t for t in triples if t[1] == "fault.injected"]
    assert injections, "the injected fault must be visible in the trace"
    span_name, _, tags = injections[0]
    assert span_name == "backend.exec"
    assert tags["site"] == "exec" and tags["mode"] == "crash"
