"""Tests for clock inference, the clock algebra, the hierarchy and disjunctive form.

These cover experiments E5-E7 of DESIGN.md: the buffer's clock relations and
equivalence classes, its hierarchy figure, and the disjunctive form of the
symmetric difference in ``current``.
"""

import pytest

from repro.clocks.algebra import ClockAlgebra
from repro.clocks.disjunctive import is_well_clocked, to_disjunctive_form
from repro.clocks.expressions import (
    clock_key,
    contains_difference,
    format_clock_expression,
    simplify_clock,
)
from repro.clocks.hierarchy import build_hierarchy
from repro.clocks.inference import infer_timing_relations
from repro.clocks.relations import TimingRelations
from repro.lang.ast import ClockBinary, ClockEmpty, ClockFalse, ClockOf, ClockTrue
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process
from repro.properties.compilable import ProcessAnalysis


class TestClockExpressions:
    def test_clock_key_distinguishes_forms(self):
        assert clock_key(ClockOf("x")) != clock_key(ClockTrue("x"))
        assert clock_key(ClockTrue("x")) != clock_key(ClockFalse("x"))

    def test_simplify_neutral_elements(self):
        zero = ClockEmpty()
        x = ClockOf("x")
        assert isinstance(simplify_clock(ClockBinary("and", x, zero)), ClockEmpty)
        assert simplify_clock(ClockBinary("or", x, zero)) == x
        assert simplify_clock(ClockBinary("diff", x, x)) == ClockEmpty()
        assert simplify_clock(ClockBinary("or", x, x)) == x

    def test_contains_difference(self):
        assert contains_difference(ClockBinary("diff", ClockOf("a"), ClockOf("b")))
        assert not contains_difference(ClockBinary("or", ClockOf("a"), ClockOf("b")))

    def test_format(self):
        rendered = format_clock_expression(
            ClockBinary("and", ClockOf("x"), ClockFalse("t"))
        )
        assert rendered == "(x^ ∧ [¬t])"


class TestInference:
    def test_delay_synchronizes(self):
        process = normalize(
            ProcessBuilder("d", inputs=["a"], outputs=["x"]).define("x", signal("a").pre(0)).build()
        )
        relations = infer_timing_relations(process)
        assert len(relations.clock_relations) == 1
        assert not relations.scheduling_relations

    def test_sampling_produces_conjunction_and_dependency(self):
        process = normalize(
            ProcessBuilder("s", inputs=["y", "c"], outputs=["x"])
            .define("x", signal("y").when(signal("c")))
            .build()
        )
        relations = infer_timing_relations(process)
        [relation] = relations.clock_relations
        assert isinstance(relation.right, ClockBinary) and relation.right.operator == "and"
        assert len(relations.scheduling_relations) == 2

    def test_merge_produces_disjunction_and_difference_scheduling(self):
        process = normalize(
            ProcessBuilder("m", inputs=["y", "z"], outputs=["x"])
            .define("x", signal("y").default(signal("z")))
            .build()
        )
        relations = infer_timing_relations(process)
        [relation] = relations.clock_relations
        assert isinstance(relation.right, ClockBinary) and relation.right.operator == "or"
        difference_edges = [
            scheduling
            for scheduling in relations.scheduling_relations
            if isinstance(scheduling.clock, ClockBinary) and scheduling.clock.operator == "diff"
        ]
        assert len(difference_edges) == 1

    def test_buffer_clock_relations_match_paper(self):
        """E5: the buffer has one master class {s, t, r, m} and two sampled classes."""
        process = normalize(buffer_process())
        relations = infer_timing_relations(process)
        algebra = ClockAlgebra(process, relations)
        master = ["buffer_s", "buffer_t", "buffer_r", "buffer_m"]
        for name in master[1:]:
            assert algebra.entails_equal(ClockOf(master[0]), ClockOf(name))
        assert algebra.entails_equal(ClockOf("x"), ClockTrue("buffer_t"))
        assert algebra.entails_equal(ClockOf("y"), ClockFalse("buffer_t"))
        # the deduction r^ = x^ ∨ y^ highlighted in Section 3.2
        assert algebra.entails_equal(
            ClockOf("buffer_r"), ClockBinary("or", ClockOf("x"), ClockOf("y"))
        )


class TestAlgebra:
    def test_entailment_uses_boolean_axioms(self, filter_normalized):
        relations = infer_timing_relations(filter_normalized)
        algebra = ClockAlgebra(filter_normalized, relations)
        # x^ = [x] ∨ [¬x] holds by construction of the encoding
        assert algebra.entails_equal(
            ClockOf("y"), ClockBinary("or", ClockTrue("y"), ClockFalse("y"))
        )
        assert algebra.is_exclusive(ClockTrue("y"), ClockFalse("y"))

    def test_satisfiability(self, filter_normalized):
        relations = infer_timing_relations(filter_normalized)
        algebra = ClockAlgebra(filter_normalized, relations)
        assert algebra.satisfiable()

    def test_empty_clock_detection(self):
        """A signal synchronized to both [a] and [¬a] can never be present."""
        builder = ProcessBuilder("dead", inputs=["a"], outputs=["x"])
        builder.define("x", const(1).when(signal("a")))
        builder.constrain(tick("x"), when_true("a"))
        builder.constrain(tick("x"), ClockFalse("a"))
        process = normalize(builder.build())
        analysis = ProcessAnalysis(process)
        assert analysis.algebra.is_empty_clock(ClockOf("x"))
        # forcing [a] = [¬a] = 0 empties the clock of a as well
        assert analysis.algebra.is_empty_clock(ClockOf("a"))

    def test_implied_equalities_reports_producer_consumer_constraint(self, producer_consumer):
        analysis = ProcessAnalysis(producer_consumer["main"])
        equalities = analysis.algebra.implied_equalities(
            [ClockFalse("a"), ClockTrue("b"), ClockTrue("a"), ClockFalse("b")]
        )
        rendered = {
            (format_clock_expression(left), format_clock_expression(right))
            for left, right in equalities
        }
        assert ("[¬a]", "[b]") in rendered or ("[b]", "[¬a]") in rendered


class TestHierarchy:
    def test_filter_hierarchy_is_single_rooted(self, filter_analysis):
        assert filter_analysis.hierarchy.is_hierarchic()
        [root] = filter_analysis.hierarchy.roots()
        assert "y" in root.signal_clocks()

    def test_buffer_hierarchy_matches_paper_figure(self, buffer_analysis):
        """E6: root {s, t, r}, with [t] ~ x^ and [¬t] ~ y^ below it."""
        hierarchy = buffer_analysis.hierarchy
        assert hierarchy.is_hierarchic()
        [root] = hierarchy.roots()
        assert {"buffer_s", "buffer_t", "buffer_r", "buffer_m"} <= set(root.signal_clocks())
        assert hierarchy.same_class(ClockOf("x"), ClockTrue("buffer_t"))
        assert hierarchy.same_class(ClockOf("y"), ClockFalse("buffer_t"))
        x_class = hierarchy.class_of(ClockOf("x"))
        y_class = hierarchy.class_of(ClockOf("y"))
        assert hierarchy.dominates(root.index, x_class.index)
        assert hierarchy.dominates(root.index, y_class.index)
        assert not hierarchy.dominates(x_class.index, y_class.index)

    def test_composition_of_filter_and_merge_has_two_roots(self, filter_merge):
        analysis = ProcessAnalysis(filter_merge["composition"])
        assert analysis.root_count() == 2

    def test_ill_formed_hierarchy_detected(self):
        """The paper's ill-formed example: x = y and z | z = y when y constrains input y."""
        builder = ProcessBuilder("ill", inputs=["y"], outputs=["x"])
        builder.local("z")
        builder.define("z", signal("y").when(signal("y")))
        builder.define("x", signal("y").and_(signal("z")))
        analysis = ProcessAnalysis(normalize(builder.build()))
        assert not analysis.hierarchy.well_formed()
        assert any("true whenever present" in reason for reason in analysis.hierarchy.ill_formed_reasons())

    def test_describe_renders_forest(self, buffer_analysis):
        description = buffer_analysis.hierarchy.describe()
        assert "buffer_t^" in description
        assert "[buffer_t]" in description

    def test_subtree_signals(self, buffer_analysis):
        hierarchy = buffer_analysis.hierarchy
        [root] = hierarchy.roots()
        assert {"x", "y"} <= hierarchy.subtree_signals(root)


class TestDisjunctiveForm:
    def test_buffer_difference_is_eliminated(self, buffer_analysis):
        """E7: the difference r^ \\ y^ of ``current`` is rewritten on the value of t."""
        result = buffer_analysis.disjunctive
        assert result.is_disjunctive()
        eliminated = [rewrite for rewrite in result.rewrites if rewrite.eliminated()]
        assert eliminated, "the buffer's merge introduces at least one difference to eliminate"

    def test_filter_is_well_clocked(self, filter_normalized):
        assert is_well_clocked(filter_normalized)

    def test_unresolvable_difference_is_reported(self):
        """A merge of two unrelated inputs leaves z^ \\ y^ without a disjunctive form."""
        builder = ProcessBuilder("free_merge", inputs=["y", "z"], outputs=["x"])
        builder.define("x", signal("y").default(signal("z")))
        process = normalize(builder.build())
        analysis = ProcessAnalysis(process)
        assert not analysis.disjunctive.is_disjunctive()
        assert analysis.disjunctive.remaining_differences()
        assert not analysis.is_well_clocked()

    def test_well_clocked_composition_of_producer_consumer(self, producer_consumer):
        analysis = ProcessAnalysis(producer_consumer["main"])
        assert analysis.is_well_clocked()
