"""The vectorized fleet runtime: identity with the scalar tier, and fallbacks.

The batch kernel's contract is *lane identity*: on any fleet where the scalar
specialized tier completes, ``run_many`` produces byte-identical outputs and
step counts — vectorized lanes and fallback lanes alike.  The tests cover the
vectorizable fragment's borders (types, magnitudes, operators), the overflow
guard, the update conflict analysis (in-place vs rebind), and the deployment
layer's routing between the numpy path and the scalar fallback.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Design
from repro.codegen.batch import (
    BatchCompilationError,
    BatchOverflowError,
    BatchProgram,
    LANE_LIMIT,
    compile_batch,
    numpy_available,
)
from repro.codegen.runtime import StreamIO
from repro.codegen.sequential import build_step_program
from repro.codegen.specialized import compile_specialized
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the batch runtime requires numpy"
)


def counter_process(name="counter"):
    """u counts clock ticks; doubling variant overflows by design."""
    builder = ProcessBuilder(name, inputs=["c"], outputs=["u"])
    builder.constrain(tick("u"), when_true("c"))
    builder.define("u", const(1) + signal("u").pre(0))
    return builder.build()


def doubling_process(name="doubler"):
    """u doubles every tick: exceeds the int64 guard within ~64 steps."""
    builder = ProcessBuilder(name, inputs=["c"], outputs=["u"])
    builder.constrain(tick("u"), when_true("c"))
    builder.define("u", signal("u").pre(1) + signal("u").pre(1))
    return builder.build()


def relay_process(name="relay"):
    """A numeric pass-through: x = y + 0, typing both signals as num."""
    builder = ProcessBuilder(name, inputs=["y"], outputs=["x"])
    builder.define("x", signal("y") + const(0))
    return builder.build()


def swap_process(name="swap"):
    """Two registers that exchange values: exercises the rebind analysis."""
    builder = ProcessBuilder(name, inputs=["c"], outputs=["x", "y"])
    builder.constrain(tick("x"), when_true("c"))
    builder.define("x", signal("y").pre(0) + const(1))
    builder.define("y", signal("x").pre(10) + const(1))
    return builder.build()


def scalar_outputs(process, lanes):
    engine = compile_specialized(process)
    results = []
    for lane in lanes:
        engine.reset()
        io = StreamIO({name: list(values) for name, values in lane.items()})
        steps = engine.run(io)
        results.append((steps, {name: io.output(name) for name in engine.outputs}))
    return results


def assert_fleet_matches_scalar(process, lanes):
    batch = compile_batch(process)
    steps, outputs = batch.run_many(lanes)
    expected = scalar_outputs(process, lanes)
    assert list(zip(steps, outputs)) == expected


class TestFragment:
    def test_untyped_signals_are_rejected(self):
        identity = ProcessBuilder("ident", inputs=["y"], outputs=["x"])
        identity.define("x", signal("y"))
        with pytest.raises(BatchCompilationError, match="bool/int64 fragment"):
            compile_batch(normalize(identity.build()))

    def test_oversized_initial_register_is_rejected(self):
        builder = ProcessBuilder("big", inputs=["c"], outputs=["u"])
        builder.constrain(tick("u"), when_true("c"))
        builder.define("u", const(1) + signal("u").pre(2**40))
        with pytest.raises(BatchCompilationError, match="int64 lane fragment"):
            compile_batch(normalize(builder.build()))

    def test_buffer_and_filter_compile(self):
        assert isinstance(compile_batch(normalize(buffer_process())), BatchProgram)
        assert isinstance(compile_batch(normalize(filter_process())), BatchProgram)

    def test_kernel_source_is_exposed(self):
        batch = compile_batch(normalize(buffer_process()))
        assert "_batch(_streams, _n, _max_steps)" in batch.python_source


class TestLaneEligibility:
    def batch(self):
        return compile_batch(normalize(relay_process()))

    def test_int_lanes_are_eligible(self):
        assert self.batch().lane_vectorizable({"y": [1, -5, 0]})

    def test_float_contamination_is_not(self):
        assert not self.batch().lane_vectorizable({"y": [1, 0.5]})

    def test_magnitude_beyond_lane_limit_is_not(self):
        assert not self.batch().lane_vectorizable({"y": [LANE_LIMIT + 1]})

    def test_bool_stream_rejects_int_contamination(self):
        batch = compile_batch(normalize(filter_process()))
        assert batch.lane_vectorizable({"y": [True, False]})
        assert not batch.lane_vectorizable({"y": [True, 1]})

    def test_stage_fleet_accepts_an_eligible_fleet(self):
        staged = self.batch().stage_fleet([{"y": [1, 2]}, {"y": [3]}])
        assert staged is not None
        data, lengths = staged["y"]
        assert data.shape == (2, 2) and lengths.tolist() == [2, 1]

    def test_stage_fleet_refuses_contaminated_fleets(self):
        assert self.batch().stage_fleet([{"y": [1]}, {"y": ["x"]}]) is None
        filt = compile_batch(normalize(filter_process()))
        assert filt.stage_fleet([{"y": [True]}, {"y": [1]}]) is None


class TestLaneIdentity:
    def test_buffer_fleet_matches_scalar(self):
        # the library buffer carries booleans through its two-phase protocol
        process = normalize(buffer_process())
        rng = random.Random(3)
        lanes = [
            {"y": [rng.random() < 0.5 for _ in range(row % 7)]} for row in range(50)
        ]
        assert_fleet_matches_scalar(process, lanes)

    def test_numeric_relay_fleet_matches_scalar(self):
        process = normalize(relay_process())
        lanes = [{"y": [row * 10 + k for k in range(row % 7)]} for row in range(50)]
        assert_fleet_matches_scalar(process, lanes)

    def test_counter_fleet_matches_scalar(self):
        process = normalize(counter_process())
        rng = random.Random(11)
        lanes = [
            {"c": [rng.random() < 0.6 for _ in range(rng.randrange(0, 20))]}
            for _ in range(64)
        ]
        assert_fleet_matches_scalar(process, lanes)

    def test_swap_fleet_matches_scalar(self):
        # the cross-coupled registers force the where-rebind update path
        process = normalize(swap_process())
        lanes = [{"c": [True] * length} for length in range(0, 12)]
        assert_fleet_matches_scalar(process, lanes)

    def test_empty_fleet(self):
        batch = compile_batch(normalize(buffer_process()))
        assert batch.run_many([]) == ([], [])

    @settings(max_examples=30, deadline=None)
    @given(
        lanes=st.lists(
            st.lists(st.booleans(), max_size=12), min_size=1, max_size=8
        )
    )
    def test_filter_fleet_hypothesis(self, lanes):
        process = normalize(filter_process())
        assert_fleet_matches_scalar(process, [{"y": lane} for lane in lanes])


class TestOverflowGuard:
    def test_doubling_raises_before_wrapping(self):
        batch = compile_batch(normalize(doubling_process()))
        with pytest.raises(BatchOverflowError):
            batch.run_many([{"c": [True] * 128}])

    def test_guard_interval_is_bounded(self):
        batch = compile_batch(normalize(doubling_process()))
        assert 1 <= batch.guard_interval <= 64
        assert batch.guard_limit < 2**63

    def test_deployment_redoes_the_batch_scalar(self):
        design = Design(name="d", components=[doubling_process()])
        deployment = design.compile("sequential", runtime="batched")
        fleet = deployment.run_many([{"c": [True] * 128}])
        assert fleet.vectorized == 0 and fleet.fallback == 1
        # the scalar tier carries exact big ints: 128 doublings of 1
        assert fleet.outputs[0]["u"][-1] == 2**128


class TestBatchedDeployment:
    def test_mixed_fleet_routes_per_lane(self):
        design = Design(name="d", components=[counter_process()])
        deployment = design.compile("sequential", runtime="batched")
        lanes = [
            {"c": [True, True, True]},
            {"c": [True, 1, True]},  # int contamination: scalar fallback
        ]
        fleet = deployment.run_many(lanes)
        assert fleet.vectorized == 1 and fleet.fallback == 1
        assert fleet.outputs[0]["u"] == [1, 2, 3]
        assert fleet.outputs[1]["u"] == [1, 2, 3]  # 1 is truthy for the clock

    def test_single_instance_run(self):
        design = Design(name="d", components=[counter_process()])
        deployment = design.compile("sequential", runtime="batched")
        assert deployment.run({"c": [True, False, True]})["u"] == [1, 2]

    def test_step_is_refused(self):
        design = Design(name="d", components=[counter_process()])
        deployment = design.compile("sequential", runtime="batched")
        with pytest.raises(Exception, match="whole fleets"):
            deployment.step(StreamIO({"c": [True]}))

    def test_fleet_result_shape(self):
        design = Design(name="d", components=[counter_process()])
        deployment = design.compile("sequential", runtime="batched")
        fleet = deployment.run_many([{"c": [True]}, {"c": []}])
        assert fleet.instances == 2
        assert fleet.steps == [1, 0]
