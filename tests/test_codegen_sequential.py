"""Tests for sequential code generation (E9, E13): generated code vs. interpreter oracle."""

import pytest

from repro.codegen.runtime import EndOfStream, RecordingIO, StreamIO, simulate
from repro.codegen.clusters import clock_clusters
from repro.codegen.sequential import CodeGenerationError, compile_process
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process, merge_process
from repro.properties.compilable import ProcessAnalysis
from repro.semantics.interpreter import ABSENT, SignalInterpreter


class TestRuntime:
    def test_stream_io_reads_in_order_and_records(self):
        io = StreamIO({"a": [1, 2]})
        assert io.read("a") == 1
        assert io.read("a") == 2
        with pytest.raises(EndOfStream):
            io.read("a")
        io.write("x", 9)
        assert io.output("x") == [9]
        assert io.reads["a"] == [1, 2]

    def test_recording_io_logs_steps(self):
        io = RecordingIO({"a": [1]})
        io.read("a")
        io.write("x", 2)
        io.end_step()
        assert io.step_log == [{"a": 1, "-> x": 2}]

    def test_simulate_stops_at_end_of_stream(self):
        compiled = compile_process(normalize(filter_process()))
        io = StreamIO({"y": [True, False]})
        steps = simulate(compiled.step, io)
        assert steps == 2


class TestBufferCodegen:
    """E9: the buffer's transition function."""

    def test_buffer_streams_values_through(self):
        compiled = compile_process(normalize(buffer_process()))
        io = StreamIO({"y": [10, 20, 30, 40]})
        steps = compiled.run(io)
        assert io.output("x") == [10, 20, 30, 40]
        assert steps == 8  # one read step and one emit step per value

    def test_buffer_python_listing_structure(self):
        compiled = compile_process(normalize(buffer_process()))
        assert "def buffer_iterate(io, state):" in compiled.python_source
        assert "io.read('y')" in compiled.python_source
        assert "io.write('x', v_x)" in compiled.python_source

    def test_buffer_c_listing_matches_paper_shape(self):
        """The generated C-like code reads y at [¬t], writes x at [t], updates s."""
        compiled = compile_process(normalize(buffer_process()))
        assert "bool buffer_iterate()" in compiled.c_source
        assert "r_buffer_y(&y)" in compiled.c_source
        assert "w_buffer_x(x)" in compiled.c_source
        assert "return TRUE;" in compiled.c_source

    def test_reset_restores_initial_state(self):
        compiled = compile_process(normalize(buffer_process()))
        io = StreamIO({"y": [1]})
        compiled.run(io)
        compiled.reset()
        assert compiled.state == compiled.initial_state


class TestOracleEquivalence:
    """Generated code must agree with the interpreter on every reaction."""

    def test_filter_matches_interpreter(self):
        process = normalize(filter_process())
        compiled = compile_process(process)
        interpreter = SignalInterpreter(process)
        stream = [True, True, False, True, False, False, True]
        io = StreamIO({"y": list(stream)})
        generated = []
        while compiled.step(io):
            pass
        generated = io.output("x")
        expected = []
        for value in stream:
            result = interpreter.step({"y": value})
            if result.present("x"):
                expected.append(result.value("x"))
        assert generated == expected

    def test_merge_matches_interpreter(self):
        process = normalize(merge_process())
        compiled = compile_process(process)
        interpreter = SignalInterpreter(process)
        pattern = [(True, 1, None), (False, None, 7), (True, 2, None), (False, None, 8)]
        io_inputs = {
            "c": [c for c, _, _ in pattern],
            "y": [y for _, y, _ in pattern if y is not None],
            "z": [z for _, _, z in pattern if z is not None],
        }
        io = StreamIO(io_inputs)
        compiled.run(io)
        expected = []
        for c, y, z in pattern:
            inputs = {"c": c, "y": y if y is not None else ABSENT, "z": z if z is not None else ABSENT}
            result = interpreter.step(inputs)
            if result.present("d"):
                expected.append(result.value("d"))
        assert io.output("d") == expected

    def test_counter_state_is_preserved_across_steps(self):
        builder = ProcessBuilder("counter", inputs=["c"], outputs=["n"])
        builder.constrain(tick("n"), when_true("c"))
        builder.define("n", const(1) + signal("n").pre(0))
        compiled = compile_process(normalize(builder.build()))
        io = StreamIO({"c": [True, False, True, True, False]})
        compiled.run(io)
        assert io.output("n") == [1, 2, 3]


class TestMultiRootHandling:
    def test_multi_root_process_is_rejected_by_default(self, filter_merge):
        with pytest.raises(CodeGenerationError):
            compile_process(filter_merge["composition"])

    def test_not_compilable_process_is_rejected(self):
        builder = ProcessBuilder("loop", inputs=[], outputs=["x", "y"])
        builder.define("x", signal("y") + 0)
        builder.define("y", signal("x") + 0)
        with pytest.raises(CodeGenerationError):
            compile_process(normalize(builder.build()))

    def test_master_clock_scheme_reproduces_section_5_1(self, producer_consumer):
        """E13: Polychrony's current scheme adds the synchronized inputs C_a and C_b."""
        compiled = compile_process(
            ProcessAnalysis(producer_consumer["main"]), master_clocks=True
        )
        assert set(compiled.master_clock_inputs) == {"C_a", "C_b"}
        io = StreamIO(
            {
                "C_a": [True, True, True, True],
                "C_b": [True, True, True, True],
                "a": [True, False, True, False],
                "b": [False, True, False, True],
            }
        )
        compiled.run(io)
        assert io.output("u") == [1, 2]
        assert io.output("v") == [1, 2, 3, 5]

    def test_master_clock_scheme_can_idle_components(self, producer_consumer):
        compiled = compile_process(
            ProcessAnalysis(producer_consumer["main"]), master_clocks=True
        )
        io = StreamIO(
            {
                "C_a": [True, False],
                "C_b": [False, True],
                "a": [True],
                "b": [False],
            }
        )
        compiled.run(io)
        assert io.output("u") == [1]
        assert io.output("v") == [1]


class TestClusters:
    def test_buffer_clusters_follow_the_hierarchy(self, buffer_analysis):
        clusters = clock_clusters(buffer_analysis)
        assert clusters[0].depth == 0
        assert {"buffer_s", "buffer_t"} <= set(clusters[0].signals)
        depths = {cluster.depth for cluster in clusters}
        assert 1 in depths
