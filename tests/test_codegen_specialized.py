"""The exec-specialized execution tier: differential coverage and hot-path IO.

The specialized tier binds IO callables and delay registers into one exec
compiled closure per process; the per-op dispatch interpreter is the
reference it is measured against.  Every test here pins the tier contract:
*identical flows* across ``compiled`` / ``specialized`` / ``interpreter``
(and ``batched`` where applicable) for the same design and inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Design
from repro.api.deploy import DeploymentError
from repro.codegen.runtime import EndOfStream, RecordingIO, StreamIO
from repro.codegen.sequential import build_step_program, compile_process
from repro.codegen.specialized import (
    InterpretedProcess,
    SpecializedProcess,
    compile_interpreted,
    compile_specialized,
    render_bind_source,
)
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture
def clean_obs():
    obs_trace.reset()
    obs_metrics.reset_global()
    yield
    obs_trace.reset()
    obs_metrics.reset_global()


def run_io(engine, inputs):
    engine.reset()
    io = StreamIO({name: list(values) for name, values in inputs.items()})
    steps = engine.run(io)
    return steps, {name: io.output(name) for name in engine.outputs}


class TestStreamIOHotPath:
    def test_feed_extends_a_live_stream(self):
        io = StreamIO({"a": [1]})
        assert io.read("a") == 1
        io.feed("a", [2, 3])
        assert io.read("a") == 2
        assert io.read("a") == 3

    def test_reader_is_a_bound_cursor(self):
        io = StreamIO({"a": [10, 20]})
        read_a = io.reader("a")
        assert read_a() == 10
        assert read_a() == 20
        with pytest.raises(EndOfStream):
            read_a()

    def test_reader_sees_values_fed_after_binding(self):
        io = StreamIO({"a": [1]})
        read_a = io.reader("a")
        assert read_a() == 1
        io.feed("a", [2])
        assert read_a() == 2

    def test_writer_appends_to_outputs(self):
        io = StreamIO()
        write_x = io.writer("x")
        write_x(7)
        write_x(8)
        assert io.output("x") == [7, 8]

    def test_recording_io_reader_writer_log_steps(self):
        io = RecordingIO({"a": [5]})
        io.reader("a")()
        io.writer("x")(6)
        io.end_step()
        assert io.step_log == [{"a": 5, "-> x": 6}]


class TestSpecializedDifferential:
    """specialized == compiled == interpreter on the paper's processes."""

    CASES = [
        (buffer_process, {"y": [3, 1, 4, 1, 5, 9]}),
        (filter_process, {"y": [True, False, True, True, False]}),
    ]

    @pytest.mark.parametrize("factory,inputs", CASES)
    def test_three_tiers_agree(self, factory, inputs):
        process = normalize(factory())
        engines = [
            compile_process(process),
            compile_specialized(process),
            compile_interpreted(process),
        ]
        results = [run_io(engine, inputs) for engine in engines]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize("factory,inputs", CASES)
    def test_specialized_is_repeatable(self, factory, inputs):
        engine = compile_specialized(normalize(factory()))
        assert run_io(engine, inputs) == run_io(engine, inputs)

    @settings(max_examples=40, deadline=None)
    @given(stream=st.lists(st.booleans(), max_size=24))
    def test_filter_differential_hypothesis(self, stream):
        process = normalize(filter_process())
        reference = run_io(compile_process(process), {"y": stream})
        assert run_io(compile_specialized(process), {"y": stream}) == reference
        assert run_io(compile_interpreted(process), {"y": stream}) == reference

    @settings(max_examples=40, deadline=None)
    @given(stream=st.lists(st.integers(-2**31, 2**31), max_size=24))
    def test_buffer_differential_hypothesis(self, stream):
        process = normalize(buffer_process())
        reference = run_io(compile_process(process), {"y": stream})
        assert run_io(compile_specialized(process), {"y": stream}) == reference
        assert run_io(compile_interpreted(process), {"y": stream}) == reference


class TestBindSource:
    def test_bind_source_binds_io_once(self):
        program = build_step_program(normalize(buffer_process()))
        source = render_bind_source(program)
        assert f"def {program.process.name}_bind(io, state):" in source
        # readers/writers are bound in the closure prologue, not per step
        prologue = source.split("def step():")[0]
        assert "_reader(io, 'y')" in prologue
        assert "_writer(io, 'x')" in prologue

    def test_specialized_exposes_program_and_source(self):
        engine = compile_specialized(normalize(buffer_process()))
        assert isinstance(engine, SpecializedProcess)
        assert engine.inputs == ("y",)
        assert "bind" in engine.python_source

    def test_interpreted_runs_same_program(self):
        engine = compile_interpreted(normalize(buffer_process()))
        assert isinstance(engine, InterpretedProcess)
        steps, outputs = run_io(engine, {"y": [1, 2]})
        assert outputs == {"x": [1, 2]}


class TestDesignRuntimes:
    def design(self, producer_consumer):
        return Design(
            name="main",
            components=[producer_consumer["producer"], producer_consumer["consumer"]],
        )

    INPUTS = {
        "a": [True, False, True, False],
        "b": [False, True, False, True],
    }

    def test_sequential_tiers_agree(self, producer_consumer):
        design = self.design(producer_consumer)
        flows = []
        for runtime in ("compiled", "specialized", "interpreter"):
            deployment = design.compile(
                "sequential", runtime=runtime, master_clocks=True
            )
            feed = dict(self.INPUTS)
            for name in deployment.master_clock_inputs:
                feed[name] = [True] * 4
            flows.append(deployment.run(feed))
        assert flows[0] == flows[1] == flows[2]
        assert flows[0]["v"]  # the composition produced something

    @pytest.mark.parametrize("strategy", ["controlled", "concurrent"])
    def test_compositional_tiers_agree(self, producer_consumer, strategy):
        design = self.design(producer_consumer)
        reference = design.compile(strategy, runtime="compiled").run(dict(self.INPUTS))
        for runtime in ("specialized", "interpreter"):
            assert (
                design.compile(strategy, runtime=runtime).run(dict(self.INPUTS))
                == reference
            )

    def test_unknown_runtime_is_rejected(self, producer_consumer):
        with pytest.raises(DeploymentError, match="unknown runtime"):
            self.design(producer_consumer).compile("sequential", runtime="warp")

    def test_batched_requires_sequential_strategy(self, producer_consumer):
        with pytest.raises(DeploymentError, match="sequential strategy only"):
            self.design(producer_consumer).compile("controlled", runtime="batched")


class TestObservability:
    def test_run_records_metrics_per_runtime(self, clean_obs, producer_consumer):
        design = Design(
            name="main",
            components=[producer_consumer["producer"], producer_consumer["consumer"]],
        )
        deployment = design.compile(
            "sequential", runtime="specialized", master_clocks=True
        )
        deployment.run({"a": [True, False], "b": [False, True]})
        snapshot = obs_metrics.GLOBAL.snapshot()
        families = {family["name"] for family in snapshot["families"]}
        assert "repro_deploy_runs_total" in families
        assert "repro_deploy_steps_total" in families

    def test_run_emits_deploy_span_when_tracing(self, clean_obs, producer_consumer):
        obs_trace.configure(enabled=True)
        design = Design(
            name="main",
            components=[producer_consumer["producer"], producer_consumer["consumer"]],
        )
        deployment = design.compile(
            "sequential", runtime="specialized", master_clocks=True
        )
        deployment.run({"a": [True], "b": [False]})
        names = [span["name"] for span in obs_trace.get_tracer().spans]
        assert "deploy.run" in names
