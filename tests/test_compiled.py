"""The compiled reaction engine agrees with the interpreter-backed engines.

Three layers of guarantees:

* **exact LTS equivalence** — for every process of the library (including
  processes with non-boolean inputs), the compiled exploration produces the
  same states, the same transitions and the same truncation flag as the
  eager interpreter-driven :func:`~repro.mc.transition.build_lts`, and the
  per-state answers match the interpreter oracle (``cross_check=True``);
* **zero interpreter evaluations** on the compiled per-state path — the
  acceptance criterion of the engine, pinned on the interpreter's global
  instrumentation counter;
* **same verdicts, valid witnesses** — ``Design.verify`` returns the same
  outcome through ``method="compiled"``, ``method="explicit"`` and the lazy
  product, including the multiply-defined-signal fallback, and violating
  reactions reported by the compiled engine are real (enabled in the eager
  LTS).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.session import AnalysisContext, Design
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_merge_composition, filter_process
from repro.library.generators import chain_of_buffers, pipeline_network, star_network
from repro.library.producer_consumer import normalized_suite
from repro.mc.compiled import (
    CompilationError,
    CompiledAbstraction,
    build_lts_compiled,
    compilation_obstacles,
)
from repro.mc.onthefly import OnTheFlyChecker, ProductLTS
from repro.mc.transition import build_lts
from repro.mocc.reactions import Reaction
from repro.semantics import interpreter


def _suite():
    suite = {
        "filter": normalize(filter_process()),
        "buffer": normalize(buffer_process()),
    }
    suite.update(filter_merge_composition())
    suite.update({f"pc_{key}": value for key, value in normalized_suite().items()})
    _components, buffers = chain_of_buffers(3)
    suite["buffers_3"] = buffers
    _components, pipeline = pipeline_network(3)
    suite["pipeline_3"] = pipeline  # non-boolean (numeric) chained inputs
    _components, star = star_network(3)
    suite["star_3"] = star
    return suite


_SUITE = _suite()


@pytest.mark.parametrize("name", sorted(_SUITE))
def test_compiled_lts_equals_eager_lts(name):
    """Same states, same transitions, same truncation — process by process."""
    process = _SUITE[name]
    assert compilation_obstacles(process) == []
    eager = build_lts(process, max_states=256)
    compiled = build_lts_compiled(process, max_states=256, cross_check=True)
    assert set(eager.states) == set(compiled.states)
    assert {(t.source, t.reaction, t.target) for t in eager.transitions} == {
        (t.source, t.reaction, t.target) for t in compiled.transitions
    }
    assert eager.truncated == compiled.truncated


def test_compiled_path_performs_zero_interpreter_evaluations():
    """Acceptance criterion: no interpreter call on the per-state hot path."""
    _components, composition = pipeline_network(4)
    abstraction = CompiledAbstraction(composition)
    state = abstraction.initial_state()
    interpreter.reset_evaluation_count()
    frontier, seen = [state], {state}
    while frontier:
        current = frontier.pop()
        for _reaction, successor in abstraction.reactions(current):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    assert abstraction.reactions_enumerated > 0
    assert interpreter.evaluation_count() == 0
    # the eager engine, by contrast, pays interpreter calls for every candidate
    build_lts(composition, max_states=256)
    assert interpreter.evaluation_count() > 0


def test_non_boolean_inputs_get_canonical_values():
    """Numeric inputs are enumerated present/absent with the canonical value."""
    _components, composition = pipeline_network(2)  # x0 is a numeric input
    compiled = build_lts_compiled(composition, max_states=64)
    carried = {
        reaction.get("x0")
        for transition in compiled.transitions
        for reaction in [transition.reaction]
        if "x0" in reaction
    }
    assert carried == {1}  # CANONICAL_NUMERIC_VALUE, as in the eager abstraction


def test_data_comparisons_are_outside_the_fragment():
    builder = ProcessBuilder("cmp", inputs=["x"], outputs=["b"])
    builder.define("b", signal("x").lt(const(3)))
    process = normalize(builder.build())
    obstacles = compilation_obstacles(process)
    assert obstacles and "<" in obstacles[0]
    assert CompiledAbstraction.try_compile(process) is None
    with pytest.raises(CompilationError):
        CompiledAbstraction(process)


def test_context_falls_back_to_interpreter_outside_the_fragment():
    """Verdicts still come out (interpreter engine) when compilation refuses."""
    builder = ProcessBuilder("cmp2", inputs=["x"], outputs=["b"])
    builder.define("b", signal("x").lt(const(3)))
    design = Design.from_builder(builder)
    assert design.context.compiled(design.composition) is None
    compiled = design.verify("non-blocking", method="compiled")
    explicit = design.verify("non-blocking", method="explicit")
    assert compiled.holds == explicit.holds
    # honest labeling: nothing was compiled, so the verdict says "explicit",
    # and the explicitly requested engine's fallback is recorded
    assert compiled.method == "explicit"
    assert "outside the compiled fragment" in compiled.diagnostics[0].name


@pytest.mark.parametrize("prop", ["weak-endochrony", "non-blocking"])
def test_verdicts_agree_across_engines(prop):
    """compiled == explicit == symbolic-free lazy product, on a real network."""
    components, _composition = chain_of_buffers(3)
    compiled = Design(name="chain", components=components).verify(prop, method="compiled")
    explicit = Design(name="chain", components=components).verify(prop, method="explicit")
    assert compiled.holds == explicit.holds
    assert compiled.method == "compiled"
    assert explicit.method == "explicit"


def test_violation_witness_is_a_real_reaction():
    """A violating reaction found by the compiled engine is enabled eagerly."""
    components, composition = chain_of_buffers(2)
    builder = ProcessBuilder("arbiter", inputs=["y2", "w"], outputs=["out"])
    builder.define("out", signal("y2").default(signal("w")))
    arbiter = normalize(builder.build())
    design = Design(name="arb", components=components + [arbiter])
    verdict = design.verify("weak-endochrony", method="compiled")
    assert not verdict.holds
    eager = build_lts(composition.compose(arbiter), max_states=512)
    witnessed = {
        transition.reaction for transition in eager.transitions
    }
    # the diagnostic's counterexample text names a concrete reaction; at
    # minimum the engines agree that a violation exists and explicit agrees
    explicit = design.verify("weak-endochrony", method="explicit")
    assert not explicit.holds
    assert witnessed  # the eager product is non-trivial


def test_multiply_defined_signal_falls_back_to_composition():
    """Two components defining one signal: no product — composition engine."""
    left = ProcessBuilder("left", inputs=["a"], outputs=["s"])
    left.define("s", signal("a"))
    right = ProcessBuilder("right", inputs=["b"], outputs=["s"])
    right.define("s", signal("b"))
    components = [normalize(left.build()), normalize(right.build())]
    with pytest.raises(ValueError):
        ProductLTS(components)
    design = Design(name="clash", components=components)
    compiled = design.verify("non-blocking", method="compiled")
    explicit = design.verify("non-blocking", method="explicit")
    assert compiled.holds == explicit.holds


def test_product_of_compiled_components_equals_interpreter_product():
    """The lazy product joins identical reaction sets from either engine."""
    components, _composition = chain_of_buffers(3)
    compiled_engine = OnTheFlyChecker(ProductLTS(components, engine="compiled"), max_states=512)
    interp_engine = OnTheFlyChecker(ProductLTS(components, engine="interpreter"), max_states=512)
    compiled_lts = compiled_engine.materialize()
    interp_lts = interp_engine.materialize()
    assert set(compiled_lts.states) == set(interp_lts.states)
    assert {(t.source, t.reaction, t.target) for t in compiled_lts.transitions} == {
        (t.source, t.reaction, t.target) for t in interp_lts.transitions
    }


def test_context_lts_is_memoized_per_engine():
    context = AnalysisContext()
    process = normalize(buffer_process())
    compiled = context.lts(process, 128)
    again = context.lts(process, 128)
    assert compiled is again
    interpreted = context.lts(process, 128, engine="interpreter")
    assert interpreted is not compiled
    assert set(interpreted.states) == set(compiled.states)


# ---------------------------------------------------------------------------
# property-based: random boolean dataflow processes
# ---------------------------------------------------------------------------

_OPERATORS = ("and", "or", "xor")


@st.composite
def boolean_processes(draw):
    """Small random processes over boolean inputs, delays, merges, samplings."""
    input_count = draw(st.integers(min_value=1, max_value=3))
    inputs = [f"i{index}" for index in range(input_count)]
    builder = ProcessBuilder("random", inputs=inputs, outputs=["o0"])
    available = list(inputs)
    equation_count = draw(st.integers(min_value=1, max_value=4))
    for index in range(equation_count):
        target = f"o{index}" if index == 0 else f"l{index}"
        kind = draw(st.sampled_from(["op", "pre", "when", "default"]))
        first = draw(st.sampled_from(available))
        second = draw(st.sampled_from(available))
        if kind == "op":
            operator = draw(st.sampled_from(_OPERATORS))
            if operator == "and":
                builder.define(target, signal(first).and_(signal(second)))
            elif operator == "or":
                builder.define(target, signal(first).or_(signal(second)))
            else:
                builder.define(target, signal(first).ne(signal(second)))
        elif kind == "pre":
            builder.define(target, signal(first).pre(draw(st.booleans())))
        elif kind == "when":
            builder.define(target, signal(first).when(signal(second)))
        else:
            builder.define(target, signal(first).default(signal(second)))
        available.append(target)
    # anchor every input as boolean so the process stays in the fragment
    for name in inputs:
        builder.define(f"anchor_{name}", signal(name).and_(signal(name)))
    return normalize(builder.build())


@settings(max_examples=40, deadline=None)
@given(process=boolean_processes())
def test_random_boolean_processes_agree(process):
    if compilation_obstacles(process):
        return  # a draw can fall outside the fragment (e.g. untyped signals)
    eager = build_lts(process, max_states=128)
    compiled = build_lts_compiled(process, max_states=128, cross_check=True)
    assert set(eager.states) == set(compiled.states)
    assert {(t.source, t.reaction, t.target) for t in eager.transitions} == {
        (t.source, t.reaction, t.target) for t in compiled.transitions
    }


# ---------------------------------------------------------------------------
# hash-consing
# ---------------------------------------------------------------------------

def test_reactions_are_interned_and_cached():
    domain = ("a", "b", "c")
    first = Reaction.interned(domain, {"a": True})
    second = Reaction.interned(("a", "b", "c"), {"a": True})
    assert first is second
    assert first.present_signals() is first.present_signals()  # cached frozenset
    assert first.items() is first.items()
    assert first.absent_signals() == frozenset({"b", "c"})
    assert hash(first) == hash(Reaction(domain, {"a": True}))
    assert first == Reaction(domain, {"a": True})
