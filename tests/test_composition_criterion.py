"""Tests of the compositional criterion (Definition 12 / Theorem 1) — E12, E13, E17, E18."""

import pytest

from repro.library.generators import (
    chain_of_buffers,
    independent_components,
    pipeline_network,
    star_network,
)
from repro.properties.compilable import ProcessAnalysis
from repro.properties.composition import check_weakly_hierarchic, compose_and_check
from repro.properties.weak_endochrony import check_weak_endochrony


class TestProducerConsumer:
    def test_criterion_holds_for_main(self, producer_consumer):
        verdict = check_weakly_hierarchic(
            [producer_consumer["producer"], producer_consumer["consumer"]],
            composition_name="main",
        )
        assert verdict.components_endochronous()
        assert verdict.composition_well_clocked
        assert verdict.composition_acyclic
        assert verdict.weakly_hierarchic()
        assert verdict.weakly_endochronous()
        assert verdict.isochronous()

    def test_reported_constraint_is_the_paper_one(self, producer_consumer):
        verdict = check_weakly_hierarchic(
            [producer_consumer["producer"], producer_consumer["consumer"]],
            composition_name="main",
        )
        assert any(
            ("[¬a]" in constraint and "[b]" in constraint)
            for constraint in verdict.reported_constraints
        )

    def test_composition_is_not_endochronous_but_criterion_holds(self, producer_consumer):
        verdict = check_weakly_hierarchic(
            [producer_consumer["producer"], producer_consumer["consumer"]]
        )
        assert not verdict.endochronous_composition()
        assert verdict.weakly_hierarchic()

    def test_criterion_agrees_with_model_checking(self, producer_consumer):
        """Theorem 1 cross-checked: the statically validated composition passes Definition 2."""
        verdict = check_weakly_hierarchic(
            [producer_consumer["producer"], producer_consumer["consumer"]]
        )
        direct = check_weak_endochrony(producer_consumer["main"])
        assert verdict.weakly_endochronous() == direct.holds()

    def test_verdict_rendering(self, producer_consumer):
        verdict = check_weakly_hierarchic(
            [producer_consumer["producer"], producer_consumer["consumer"]],
            composition_name="main",
        )
        text = str(verdict)
        assert "weakly hierarchic" in text
        assert "producer" in text and "consumer" in text


class TestLTTA:
    """E12: the LTTA is isochronous but not endochronous."""

    def test_devices_are_endochronous(self, ltta_parts):
        for name, component in ltta_parts.items():
            analysis = ProcessAnalysis(component)
            assert analysis.is_compilable(), name
            assert analysis.is_hierarchic(), name

    def test_ltta_hierarchy_has_four_roots(self, ltta):
        analysis = ProcessAnalysis(ltta["ltta"])
        assert analysis.root_count() == 4

    def test_ltta_is_not_endochronous_but_weakly_hierarchic(self, ltta_parts, ltta):
        verdict = check_weakly_hierarchic(list(ltta_parts.values()), composition_name="ltta")
        assert verdict.weakly_hierarchic(), str(verdict)
        assert not verdict.endochronous_composition()

    def test_full_ltta_process_is_compilable(self, ltta):
        analysis = ProcessAnalysis(ltta["ltta"])
        assert analysis.is_compilable()


class TestSyntheticNetworks:
    def test_independent_components_satisfy_the_criterion(self):
        components, composition = independent_components(4)
        verdict = check_weakly_hierarchic(components, composition=composition)
        assert verdict.weakly_hierarchic()
        assert verdict.composition_roots == 4
        assert not verdict.reported_constraints

    def test_pipeline_satisfies_the_criterion_and_reports_constraints(self):
        components, composition = pipeline_network(3)
        verdict = check_weakly_hierarchic(components, composition=composition)
        assert verdict.weakly_hierarchic()
        assert verdict.reported_constraints  # [c_i] = [c_{i+1}]-style constraints

    def test_star_satisfies_the_criterion(self):
        components, composition = star_network(3)
        verdict = check_weakly_hierarchic(components, composition=composition)
        assert verdict.weakly_hierarchic()

    def test_buffer_chain_components_are_endochronous(self):
        components, composition = chain_of_buffers(3)
        for component in components:
            assert ProcessAnalysis(component).is_hierarchic()
        verdict = check_weakly_hierarchic(components, composition=composition)
        assert verdict.components_endochronous()
        assert verdict.composition_acyclic

    def test_criterion_rejects_non_endochronous_component(self, filter_merge, producer_consumer):
        """A multi-rooted component makes the criterion fail even if the whole is fine."""
        verdict = check_weakly_hierarchic(
            [filter_merge["composition"], producer_consumer["producer"]]
        )
        assert not verdict.weakly_hierarchic()

    def test_compose_and_check_builds_the_composition(self, producer_consumer):
        verdict = compose_and_check(
            [producer_consumer["producer"], producer_consumer["consumer"]], name="main"
        )
        assert verdict.composition_name == "main"
        assert verdict.weakly_hierarchic()

    def test_criterion_requires_at_least_one_component(self):
        with pytest.raises(ValueError):
            check_weakly_hierarchic([])
