"""Tests for the compositional code generation scheme: controller (E14, E15) and threads (E16)."""

import pytest

from repro.codegen.concurrent import ConcurrentComposition, run_concurrent
from repro.codegen.controller import (
    ClockConstraintSpec,
    ClockLiteral,
    ControlledComposition,
    synthesize_controller,
)
from repro.codegen.runtime import StreamIO
from repro.codegen.sequential import compile_process
from repro.library.controllers import rendezvous_controller_process, scheduler_process
from repro.lang.normalize import normalize
from repro.properties.composition import check_weakly_hierarchic
from repro.semantics.interpreter import SignalInterpreter


@pytest.fixture()
def compiled_pair(producer_consumer):
    producer = compile_process(producer_consumer["producer"])
    consumer = compile_process(producer_consumer["consumer"])
    verdict = check_weakly_hierarchic(
        [producer_consumer["producer"], producer_consumer["consumer"]], composition_name="main"
    )
    return producer, consumer, verdict


class TestControllerSynthesis:
    def test_constraint_is_synthesized_from_the_report(self, compiled_pair):
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        assert len(controlled.constraints) == 1
        constraint = controlled.constraints[0]
        assert {constraint.left.component, constraint.right.component} == {"producer", "consumer"}
        assert {constraint.left.signal, constraint.right.signal} == {"a", "b"}

    def test_interface_is_the_union_of_component_interfaces(self, compiled_pair):
        """Section 5.2: no master clock is added to the interface."""
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        assert set(controlled.external_inputs) == {"a", "b"}
        assert set(controlled.external_outputs) == {"u", "v"}

    def test_controlled_execution_matches_the_paper_run(self, compiled_pair):
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        io = StreamIO({"a": [True, False, True, False], "b": [False, True, False, True]})
        steps = controlled.run(io)
        assert steps == 4
        assert io.output("u") == [1, 2]
        assert io.output("v") == [1, 2, 3, 5]

    def test_controller_suspends_one_side_until_rendezvous(self, compiled_pair):
        """The producer arrives first (a = false) and must wait for b = true.

        While suspended it reads no further input (so ``a = true`` is never
        consumed) and the consumer keeps running freely; the shared ``x`` is
        transmitted only at the rendez-vous, in the third step.
        """
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        io = StreamIO({"a": [False, True], "b": [False, False, True]})
        controlled.run(io)
        assert io.output("v") == [1, 2, 3]
        assert io.output("u") == []
        # while suspended (steps 2 and 3) the producer read no further input:
        # only the trailing, post-rendez-vous step consumes the second value of a
        assert len(io.reads["a"]) <= 2

    def test_controlled_execution_matches_oracle_interpreter(self, compiled_pair, producer_consumer):
        """The controlled composition and the synchronous interpreter produce the same flows."""
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        a_stream = [True, False, False, True, False, True]
        b_stream = [False, True, True, False, True, False]
        io = StreamIO({"a": list(a_stream), "b": list(b_stream)})
        controlled.run(io)

        # Oracle: run the composed process synchronously, pairing the constrained
        # instants ([¬a] with [b]) exactly as the controller does.
        interpreter = SignalInterpreter(producer_consumer["main"])
        expected_u, expected_v = [], []
        a_queue, b_queue = list(a_stream), list(b_stream)
        while a_queue or b_queue:
            inputs = {}
            if a_queue:
                inputs["a"] = a_queue.pop(0)
            if b_queue:
                inputs["b"] = b_queue.pop(0)
            result = interpreter.step(inputs)
            if result.present("u"):
                expected_u.append(result.value("u"))
            if result.present("v"):
                expected_v.append(result.value("v"))
        assert io.output("u") == expected_u
        assert io.output("v") == expected_v

    def test_c_listing_mentions_rendezvous(self, compiled_pair):
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        listing = controlled.c_listing()
        assert "rendez-vous" in listing
        assert "producer_iterate()" in listing and "consumer_iterate()" in listing

    def test_reset_clears_pending_state(self, compiled_pair):
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        io = StreamIO({"a": [False], "b": [False]})
        controlled.run(io)
        controlled.reset()
        io2 = StreamIO({"a": [True], "b": [False]})
        controlled.run(io2)
        assert io2.output("u") == [1]


class TestMain2Compositionality:
    """E15: adding a third endochronous component only needs one more controller."""

    def test_main2_criterion_and_controller(self, producer_consumer):
        components = [
            producer_consumer["producer"],
            producer_consumer["consumer"],
        ]
        verdict = check_weakly_hierarchic(components, composition_name="main")
        assert verdict.weakly_hierarchic()
        # main2 = main | consumer(c, v): analysed as a whole it stays compilable
        from repro.properties.compilable import ProcessAnalysis

        analysis = ProcessAnalysis(producer_consumer["main2"])
        assert analysis.is_compilable()
        assert analysis.root_count() >= 2


class TestConcurrentScheme:
    """E16: the thread + barrier variant produces the same flows."""

    def test_concurrent_execution_matches_sequential_controller(self, compiled_pair):
        producer, consumer, verdict = compiled_pair
        controlled = synthesize_controller([producer, consumer], verdict)
        inputs = {"a": [True, False, True, False], "b": [False, True, False, True]}

        sequential_io = StreamIO({name: list(values) for name, values in inputs.items()})
        controlled.run(sequential_io)

        producer.reset()
        consumer.reset()
        concurrent_outputs = run_concurrent(
            [producer, consumer], controlled.constraints, inputs
        )
        assert concurrent_outputs.get("u") == sequential_io.output("u")
        assert concurrent_outputs.get("v") == sequential_io.output("v")

    def test_concurrent_composition_without_constraints_runs_freely(self, producer_consumer):
        producer = compile_process(producer_consumer["producer"])
        outputs = run_concurrent([producer], [], {"a": [True, True, False]})
        assert outputs.get("u") == [1, 2]


class TestSignalLevelControllers:
    def test_rendezvous_controller_fires_when_both_sides_arrived(self):
        process = normalize(rendezvous_controller_process())
        interpreter = SignalInterpreter(process)
        # a arrives first, b later: the grant fires at the second instant
        first = interpreter.step({"ta": True, "tb": False})
        assert first.value("ga") is False
        second = interpreter.step({"ta": False, "tb": True})
        assert second.value("ga") is True and second.value("gb") is True
        third = interpreter.step({"ta": False, "tb": False})
        assert third.value("ga") is False

    def test_rendezvous_controller_immediate_fire(self):
        process = normalize(rendezvous_controller_process())
        interpreter = SignalInterpreter(process)
        result = interpreter.step({"ta": True, "tb": True})
        assert result.value("ga") is True

    def test_scheduler_process_is_endochronous(self):
        from repro.properties.endochrony import is_endochronous

        assert is_endochronous(normalize(scheduler_process()))
        assert is_endochronous(normalize(rendezvous_controller_process()))
