"""The PR 1 compatibility shims warn on every call — the retirement path.

Each old bool/report entry point still answers correctly (they remain thin
wrappers over the Verdict producers) but now emits a ``DeprecationWarning``
naming its replacement, so downstream code can migrate before the shims are
removed.  ``ProcessAnalysis.of`` has warned since PR 1 and is asserted in
``tests/test_api_session.py``.
"""

from __future__ import annotations

import pytest

from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process
from repro.properties.compilable import is_compilable, verify_compilable
from repro.properties.endochrony import is_endochronous, is_hierarchic, verify_endochrony
from repro.properties.nonblocking import is_non_blocking, verify_non_blocking


@pytest.fixture(scope="module")
def filter_normalized():
    return normalize(filter_process())


def test_is_compilable_warns_and_still_answers(filter_normalized):
    with pytest.warns(DeprecationWarning, match="is_compilable.*verify_compilable"):
        holds = is_compilable(filter_normalized)
    assert holds == verify_compilable(filter_normalized).holds


def test_is_hierarchic_warns_and_still_answers(filter_normalized):
    with pytest.warns(DeprecationWarning, match="is_hierarchic"):
        holds = is_hierarchic(filter_normalized)
    assert holds is True


def test_is_endochronous_warns_and_still_answers(filter_normalized):
    with pytest.warns(DeprecationWarning, match="is_endochronous.*verify_endochrony"):
        holds = is_endochronous(filter_normalized)
    assert holds == verify_endochrony(filter_normalized).holds


def test_is_non_blocking_warns_and_still_answers():
    process = normalize(buffer_process())
    with pytest.warns(DeprecationWarning, match="is_non_blocking.*verify_non_blocking"):
        report = is_non_blocking(process)
    assert report.holds == verify_non_blocking(process).holds


def test_shim_warnings_name_the_design_facade(filter_normalized):
    """Every shim's warning points at the Design.verify replacement."""
    for shim, argument in (
        (is_compilable, filter_normalized),
        (is_endochronous, filter_normalized),
        (is_hierarchic, filter_normalized),
        (is_non_blocking, filter_normalized),
    ):
        with pytest.warns(DeprecationWarning, match="Design.verify"):
            shim(argument)
