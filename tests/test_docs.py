"""The documentation suite is executable and internally consistent.

Two guarantees, both enforced in CI's docs job:

* every fenced ``python`` code block in ``docs/*.md`` and ``README.md``
  executes, top to bottom, in one namespace per file — examples cannot
  drift from the API;
* every relative markdown link in those files points at a path that exists
  in the repository — no broken intra-repo links.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md")),
    key=lambda path: path.name,
)

_FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: shell/session snippets that must not be executed as python
_NON_PYTHON = {"", "sh", "bash", "text", "console", "signal"}


def _python_blocks(path: Path):
    for match in _FENCE.finditer(path.read_text(encoding="utf-8")):
        language, body = match.group(1), match.group(2)
        if language == "python":
            yield body


def _relative_links(path: Path):
    for match in _LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_execute(path):
    """All python blocks of one file run in order, in a shared namespace."""
    blocks = list(_python_blocks(path))
    if not blocks:
        pytest.skip(f"{path.name} has no python snippets")
    namespace: dict = {"__name__": f"doc_snippet::{path.name}"}
    for index, block in enumerate(blocks):
        code = compile(block, f"{path.name}[snippet {index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own documentation


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_links_resolve(path):
    """Relative links point at files/directories that exist in the repo."""
    broken = []
    for target in _relative_links(path):
        if not target:
            continue  # pure-anchor link into the same file
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken relative links: {broken}"


def test_docs_exist():
    """The documentation suite the repo promises is actually present."""
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "api.md").is_file()
