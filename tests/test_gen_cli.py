"""The ``repro-gen`` command line: every subcommand, in process."""

import json

import pytest

from repro.gen.__main__ import main


def _lines(capsys):
    return [json.loads(line) for line in capsys.readouterr().out.splitlines()]


class TestSample:
    def test_sample_emits_one_record_per_seed(self, capsys):
        assert main(["sample", "--seed", "0", "--count", "3"]) == 0
        records = _lines(capsys)
        assert len(records) == 3
        assert [r["seed"] for r in records] == [0, 1, 2]
        assert all(r["digest"] for r in records)

    def test_sample_is_deterministic(self, capsys):
        main(["sample", "--seed", "12"])
        first = _lines(capsys)
        main(["sample", "--seed", "12"])
        assert first == _lines(capsys)

    def test_sample_family_restriction(self, capsys):
        main(["sample", "--seed", "0", "--count", "4", "--family", "ring"])
        assert {r["family"] for r in _lines(capsys)} == {"ring"}

    def test_sample_verify(self, capsys):
        main(["sample", "--seed", "1", "--verify"])
        (record,) = _lines(capsys)
        assert set(record["verdicts"]) == {"weak-endochrony", "non-blocking"}


class TestEnumerate:
    def test_enumerate_reports_unique_count(self, capsys):
        assert main(
            ["enumerate", "--sort", "bool", "--depth", "1",
             "--signal", "a:bool", "--limit", "5"]
        ) == 0
        records = _lines(capsys)
        assert len(records) == 6  # 5 expressions + the summary line
        summary = records[-1]
        assert summary["unique_expressions"] > 5
        assert summary["printed"] == 5

    def test_enumerate_rejects_bad_signal(self):
        with pytest.raises(SystemExit):
            main(["enumerate", "--sort", "bool", "--signal", "a:string"])


class TestDifferential:
    def test_differential_agrees_on_a_small_matrix(self, capsys):
        assert main(
            ["differential", "--seed", "0", "--count", "8", "--no-shrink"]
        ) == 0
        summary = _lines(capsys)[-1]
        assert summary["designs"] == 8
        assert summary["agreed"] is True


class TestCorpus:
    def test_corpus_build_then_check(self, capsys, tmp_path):
        path = str(tmp_path / "corpus.json")
        assert main(
            ["corpus", "build", "--out", path, "--seed", "0", "--count", "3"]
        ) == 0
        assert _lines(capsys)[-1]["entries"] == 3
        assert main(["corpus", "check", "--corpus", path]) == 0
        assert _lines(capsys)[-1]["drift"] == 0

    def test_corpus_check_fails_on_drift(self, capsys, tmp_path):
        path = tmp_path / "corpus.json"
        main(["corpus", "build", "--out", str(path), "--seed", "0", "--count", "1"])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        key = next(iter(payload["entries"][0]["verdicts"]))
        payload["entries"][0]["verdicts"][key]["holds"] = not payload["entries"][0][
            "verdicts"
        ][key]["holds"]
        path.write_text(json.dumps(payload))
        assert main(["corpus", "check", "--corpus", str(path)]) == 1
        records = _lines(capsys)
        assert any("drift" in record and isinstance(record["drift"], str) for record in records)

    def test_corpus_seed_store(self, capsys, tmp_path):
        corpus_path = str(tmp_path / "corpus.json")
        store_path = str(tmp_path / "store")
        main(["corpus", "build", "--out", corpus_path, "--seed", "0", "--count", "2"])
        capsys.readouterr()
        assert main(
            ["corpus", "seed-store", "--corpus", corpus_path, "--store", store_path]
        ) == 0
        assert _lines(capsys)[-1]["verdicts_written"] == 16
        # a warm check through the seeded store stays clean
        assert main(
            ["corpus", "check", "--corpus", corpus_path, "--store", store_path]
        ) == 0
