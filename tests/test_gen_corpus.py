"""The persisted corpus: build, round-trip, drift detection, warm-store seeding."""

import json
from pathlib import Path

import pytest

from repro.api.session import AnalysisContext, Design
from repro.gen.corpus import (
    Corpus,
    CorpusEntry,
    build_corpus,
    check_corpus,
    seed_store,
)
from repro.service.store import ArtifactStore

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_CORPUS = REPO_ROOT / "corpus" / "corpus.json"


@pytest.fixture(scope="module")
def small_corpus():
    return build_corpus(range(6))


class TestBuildAndPersist:
    def test_entries_record_provenance_and_identity(self, small_corpus):
        for entry in small_corpus:
            assert entry.digest
            assert entry.family
            assert entry.components
            assert len(entry.verdicts) == 8  # 2 properties × 4 methods

    def test_save_load_roundtrip(self, small_corpus, tmp_path):
        path = small_corpus.save(tmp_path / "corpus.json")
        loaded = Corpus.load(path)
        # compare after JSON normalization: tuples in witness payloads
        # legitimately come back as lists
        assert json.loads(json.dumps(small_corpus.to_dict())) == loaded.to_dict()

    def test_newer_version_is_rejected(self):
        with pytest.raises(ValueError):
            Corpus.from_dict({"version": 999, "entries": []})

    def test_regenerate_rebuilds_the_same_design(self, small_corpus):
        entry = small_corpus.entries[0]
        design = Design.from_generated(entry.regenerate())
        assert design.digest() == entry.digest


class TestDriftDetection:
    def test_clean_corpus_has_no_drift(self, small_corpus):
        assert check_corpus(small_corpus) == []

    def test_verdict_tampering_is_detected(self, small_corpus):
        corpus = Corpus.from_dict(json.loads(json.dumps(small_corpus.to_dict())))
        entry = corpus.entries[0]
        key = next(iter(entry.verdicts))
        tampered = dict(entry.verdicts[key])
        tampered["holds"] = not tampered["holds"]
        entry.verdicts[key] = tampered  # type: ignore[index]
        drift = check_corpus(corpus)
        assert any(item.kind == "verdict" for item in drift)

    def test_digest_drift_is_detected_and_stops_reverification(self, small_corpus):
        corpus = Corpus.from_dict(json.loads(json.dumps(small_corpus.to_dict())))
        payload = corpus.entries[0].to_dict()
        payload["digest"] = "0" * 64
        corpus.entries[0] = CorpusEntry.from_dict(payload)
        drift = check_corpus(corpus)
        digest_drift = [item for item in drift if item.kind == "digest"]
        assert len(digest_drift) == 1
        assert digest_drift[0].seed == corpus.entries[0].seed


class TestWarmStoreSeeding:
    def test_seed_store_answers_queries_without_recompute(self, small_corpus, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        written = seed_store(small_corpus, store)
        assert written == len(small_corpus) * 8

        context = AnalysisContext()
        context.artifact_cache = store
        entry = small_corpus.entries[0]
        design = Design.from_generated(entry.regenerate(), context=context)
        before = store.hits
        verdict = design.verify(
            "non-blocking", method="explicit", **small_corpus.options()
        )
        assert bool(verdict.holds) == entry.holds("non-blocking", "explicit")
        assert store.hits > before  # answered from the seeded store


class TestCommittedCorpus:
    """The acceptance criterion: the committed corpus re-verifies clean."""

    def test_committed_corpus_exists_with_enough_entries(self):
        corpus = Corpus.load(COMMITTED_CORPUS)
        assert len(corpus) >= 50

    def test_committed_corpus_reverifies_clean(self):
        corpus = Corpus.load(COMMITTED_CORPUS)
        drift = check_corpus(corpus)
        assert drift == [], [item.describe() for item in drift]
