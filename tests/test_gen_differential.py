"""The differential harness: agreement contracts, the big matrix, shrinking."""

import pytest

from repro.gen.differential import (
    CONTRACTS,
    METHODS,
    PROPERTIES,
    Disagreement,
    check_contract,
    run_design,
    run_matrix,
    shrink,
)
from repro.gen.topologies import sample_design


class TestContract:
    """check_contract on synthetic matrices: the rules themselves."""

    def test_exact_class_violation_is_a_disagreement(self):
        matrix = {
            "non-blocking": {
                "static": False, "explicit": True, "compiled": False, "symbolic": True
            }
        }
        disagreements, gaps = check_contract(matrix, "synthetic")
        assert len(disagreements) == 1
        assert disagreements[0].kind == "exact"
        assert not gaps

    def test_static_implication_violation_is_a_disagreement(self):
        matrix = {
            "weak-endochrony": {
                "static": True, "explicit": False, "compiled": False, "symbolic": False
            }
        }
        disagreements, _ = check_contract(matrix, "synthetic")
        kinds = {d.kind for d in disagreements}
        assert "implication" in kinds

    def test_static_failing_implies_nothing(self):
        # the criterion is sufficient, not complete: static=False with the
        # model checkers holding is the documented incompleteness, not a bug
        matrix = {
            "weak-endochrony": {
                "static": False, "explicit": True, "compiled": True, "symbolic": True
            }
        }
        disagreements, gaps = check_contract(matrix, "synthetic")
        assert not disagreements and not gaps

    def test_symbolic_weak_endochrony_divergence_is_a_gap_not_a_bug(self):
        # Section 4.1's invariant formulation vs Definition 2's axioms: a
        # recorded formulation gap, not an engine disagreement
        matrix = {
            "weak-endochrony": {
                "static": True, "explicit": True, "compiled": True, "symbolic": False
            }
        }
        disagreements, gaps = check_contract(matrix, "synthetic")
        assert not disagreements
        assert len(gaps) == 1
        assert gaps[0].method == "symbolic"

    def test_contract_covers_all_methods_of_both_properties(self):
        for prop in PROPERTIES:
            contract = CONTRACTS[prop]
            covered = set(contract.exact) | set(contract.related) | {
                method for pair in contract.implications for method in pair
            }
            assert covered == set(METHODS)


class TestHarness:
    def test_run_design_produces_a_full_matrix(self):
        result = run_design(sample_design(0))
        assert set(result.verdicts) == set(PROPERTIES)
        for row in result.verdicts.values():
            assert set(row) == set(METHODS)

    def test_engines_agree_on_200_sampled_designs(self):
        """The acceptance bar: ≥200 seeded designs, zero contract violations."""
        report = run_matrix(range(200), shrink_disagreements=False)
        assert report.designs == 200
        assert report.agreed, [d.describe() for d in report.disagreements]

    def test_known_formulation_gap_is_recorded(self):
        # seed 5 draws an arbiter tree whose leaf arbiters are mutually
        # exclusive: Definition 2 holds, the root-pair invariants do not
        result = run_design(sample_design(5))
        assert result.agreed
        assert any(
            gap.prop == "weak-endochrony" and gap.method == "symbolic"
            for gap in result.gaps
        )


class TestShrinking:
    def test_shrink_reduces_a_divergent_design(self):
        generated = sample_design(5)  # arbiter tree, 3 components
        disagreement = Disagreement(
            prop="weak-endochrony",
            kind="exact",
            methods=("explicit", "symbolic"),
            verdicts={"explicit": True, "symbolic": False},
            design_name=generated.name,
            seed=5,
            family=generated.family,
        )
        result = shrink(generated, disagreement, candidate_timeout=1.0)
        # the divergence needs all three arbiters (the exclusion comes from
        # the root's selector), but most equations are droppable
        assert len(result.components) <= len(generated.components)
        assert result.removed_equations > 0
        total_equations = sum(len(c.equations) for c in result.components)
        original_equations = sum(len(c.equations) for c in generated.components)
        assert total_equations < original_equations
        assert result.sources()

    def test_shrink_never_returns_an_empty_design(self):
        generated = sample_design(0)
        disagreement = Disagreement(
            prop="non-blocking",
            kind="exact",
            methods=("explicit", "compiled"),
            verdicts={"explicit": True, "compiled": True},  # not actually divergent
            design_name=generated.name,
        )
        result = shrink(generated, disagreement, candidate_timeout=1.0)
        # nothing reproduces a non-divergence, so nothing is removed
        assert len(result.components) == len(generated.components)
        assert result.removed_equations == 0
