"""The typed grammar: sorts, rules, enumeration, seeded sampling, components."""

import random

import pytest

from repro.gen.grammar import (
    BOOL,
    BOOL_SAMPLED,
    NUM,
    NUM_SAMPLED,
    SORTS,
    ComponentSpec,
    Grammar,
    Sort,
    build_component,
    enumerate_components,
    sample_component,
)
from repro.lang.ast import Expression, When
from repro.lang.normalize import infer_types, normalize
from repro.lang.parser import parse_process
from repro.lang.printer import format_process, process_digest
from repro.properties.compilable import ProcessAnalysis

VOCABULARY = {"a": "bool", "b": "bool", "n": "num"}


class TestSorts:
    def test_sort_validates_kind_and_clock(self):
        with pytest.raises(ValueError):
            Sort("string")
        with pytest.raises(ValueError):
            Sort("bool", "syncopated")

    def test_the_four_sorts_are_distinct(self):
        assert len(set(SORTS)) == 4


class TestEnumeration:
    def test_terminals_are_typed_references_plus_constants(self):
        grammar = Grammar()
        bools = grammar.terminals(BOOL, VOCABULARY)
        names = {getattr(t, "name", None) for t in bools}
        assert {"a", "b"} <= names and "n" not in names
        # constants too (true/false for bool)
        assert len(bools) == 4

    def test_sampled_sorts_have_no_terminals(self):
        grammar = Grammar()
        assert grammar.terminals(BOOL_SAMPLED, VOCABULARY) == ()
        assert grammar.terminals(NUM_SAMPLED, VOCABULARY) == ()

    def test_enumeration_is_unique(self):
        grammar = Grammar()
        expressions = grammar.enumerate(BOOL, 1, VOCABULARY)
        assert len(expressions) == len(set(expressions))

    def test_exact_depth_levels_are_disjoint(self):
        grammar = Grammar()
        level0 = set(grammar.enumerate_exact(NUM, 0, VOCABULARY))
        level1 = set(grammar.enumerate_exact(NUM, 1, VOCABULARY))
        assert level0 and level1
        assert not (level0 & level1)

    def test_enumeration_is_deterministic(self):
        assert (
            Grammar().enumerate(BOOL, 1, VOCABULARY)
            == Grammar().enumerate(BOOL, 1, VOCABULARY)
        )

    def test_sampled_expressions_are_whens(self):
        grammar = Grammar()
        for expression in grammar.enumerate(BOOL_SAMPLED, 1, VOCABULARY):
            assert isinstance(expression, When)

    def test_count_matches_enumerate(self):
        grammar = Grammar()
        assert grammar.count(NUM, 1, VOCABULARY) == len(
            grammar.enumerate(NUM, 1, VOCABULARY)
        )


class TestSampling:
    def test_same_seed_same_expression(self):
        grammar = Grammar()
        first = grammar.sample(BOOL, VOCABULARY, random.Random(42), max_depth=3)
        second = grammar.sample(BOOL, VOCABULARY, random.Random(42), max_depth=3)
        assert first == second

    def test_sampled_expressions_are_expressions(self):
        grammar = Grammar()
        rng = random.Random(7)
        for _ in range(50):
            sort = SORTS[rng.randrange(2)]  # sync sorts only at depth 0
            expression = grammar.sample(sort, VOCABULARY, rng, max_depth=3)
            assert isinstance(expression, Expression)

    def test_sample_referencing_always_references_a_signal(self):
        grammar = Grammar()
        rng = random.Random(3)
        for _ in range(50):
            expression = grammar.sample_referencing(NUM, VOCABULARY, rng, max_depth=2)
            assert expression.free_signals()

    def test_sampled_sort_needs_depth(self):
        grammar = Grammar()
        with pytest.raises(ValueError):
            grammar.sample(NUM_SAMPLED, VOCABULARY, random.Random(0), max_depth=0)


SPEC = ComponentSpec(
    name="unit",
    inputs=(("x", "num"), ("g", "bool")),
    outputs=(("y", NUM), ("p", BOOL_SAMPLED)),
    depth=2,
)


class TestComponents:
    def test_sample_component_is_deterministic(self):
        first = sample_component(SPEC, random.Random(11))
        second = sample_component(SPEC, random.Random(11))
        assert process_digest(normalize(first)) == process_digest(normalize(second))

    def test_component_shape(self):
        definition = sample_component(SPEC, random.Random(5))
        assert definition.inputs == ("unit_go", "x", "g")
        assert definition.outputs == ("y", "p")

    def test_components_are_well_typed_and_analyzable(self):
        rng = random.Random(0)
        for _ in range(20):
            definition = sample_component(SPEC, rng)
            normalized = normalize(definition)
            types = infer_types(normalized)
            assert types["y"] == "num"
            analysis = ProcessAnalysis(normalized)
            assert analysis.summary()  # analysis completes

    def test_component_roundtrips_through_printer_and_parser(self):
        rng = random.Random(23)
        for _ in range(10):
            definition = sample_component(SPEC, rng)
            reparsed = parse_process(format_process(definition))
            assert process_digest(normalize(reparsed)) == process_digest(
                normalize(definition)
            )

    def test_enumerate_components_unique_and_limited(self):
        spec = ComponentSpec(
            name="tiny", inputs=(("v", "bool"),), outputs=(("w", BOOL),),
            state=False, depth=1,
        )
        produced = list(enumerate_components(spec, limit=25))
        assert len(produced) == 25
        digests = {process_digest(normalize(d)) for d in produced}
        assert len(digests) == 25

    def test_build_component_anchors_sync_outputs(self):
        spec = ComponentSpec(
            name="anchored", inputs=(("v", "num"),), outputs=(("w", NUM),),
            state=False, depth=1,
        )
        definition = sample_component(spec, random.Random(1))
        normalized = normalize(definition)
        analysis = ProcessAnalysis(normalized)
        # single activation-rooted clock hierarchy: the endochronous shape
        assert analysis.is_hierarchic()
