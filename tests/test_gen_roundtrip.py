"""Property-based round-trips over generated designs (hypothesis).

The satellite contract of the generator subsystem: a hypothesis strategy
wraps the seeded sampler, and every design it produces must survive a
print → parse round trip with a stable ``canonical_digest`` — the identity
the artifact store and the corpus key on.
"""

from hypothesis import given, settings, strategies as st

from repro.gen.topologies import GeneratedDesign, sample_design
from repro.lang.normalize import normalize
from repro.lang.parser import parse_process
from repro.lang.printer import (
    canonical_digest,
    format_normalized_source,
    process_digest,
)


def generated_designs(depth: int = 2) -> st.SearchStrategy[GeneratedDesign]:
    """A hypothesis strategy of seeded designs: shrinks toward small seeds."""
    return st.integers(min_value=0, max_value=2 ** 16).map(
        lambda seed: sample_design(seed, depth=depth)
    )


@given(generated_designs())
@settings(max_examples=30, deadline=None)
def test_generated_components_roundtrip_with_stable_digest(design):
    """normalize(parse(format_normalized_source(c))) has c's digest, ∀ components."""
    for component in design.components:
        source = format_normalized_source(component)
        reparsed = normalize(parse_process(source))
        assert process_digest(reparsed) == process_digest(component)


@given(generated_designs())
@settings(max_examples=30, deadline=None)
def test_design_digest_survives_the_roundtrip(design):
    """The whole-design content digest is reconstructible from printed sources."""
    reparsed = [
        normalize(parse_process(format_normalized_source(component)))
        for component in design.components
    ]
    assert canonical_digest(reparsed) == canonical_digest(design.components)


@given(st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=30, deadline=None)
def test_sampler_is_a_function_of_its_seed(seed):
    """Two draws of one seed are digest-identical: seeds are replayable identities."""
    assert canonical_digest(sample_design(seed).components) == canonical_digest(
        sample_design(seed).components
    )
