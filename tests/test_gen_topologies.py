"""Topology families, the seeded design sampler, and the library shim."""

import random

import pytest

from repro.gen.topologies import (
    FAMILIES,
    arbiter_tree,
    chain_of_buffers,
    clock_divider,
    crossbar,
    design_space,
    independent_components,
    mode_automaton,
    pipeline_network,
    random_network,
    sample_design,
    star_network,
    token_ring,
)
from repro.lang.printer import canonical_digest
from repro.properties.compilable import ProcessAnalysis


class TestStructuralFamilies:
    @pytest.mark.parametrize("size", [2, 3, 5])
    def test_token_ring_scales(self, size):
        components, composition = token_ring(size)
        assert len(components) == size
        assert ProcessAnalysis(composition).summary()

    def test_token_ring_rejects_degenerate_size(self):
        with pytest.raises(ValueError):
            token_ring(1)

    @pytest.mark.parametrize("depth", [1, 2])
    def test_arbiter_tree_component_count(self, depth):
        components, composition = arbiter_tree(depth)
        assert len(components) == 2 ** depth - 1
        for component in components:
            assert ProcessAnalysis(component).is_hierarchic()

    def test_arbiter_tree_root_grant_is_an_output(self):
        _, composition = arbiter_tree(2)
        assert "g0_0" in composition.outputs

    @pytest.mark.parametrize("sources,sinks", [(1, 1), (2, 2)])
    def test_crossbar_component_count(self, sources, sinks):
        components, composition = crossbar(sources, sinks)
        assert len(components) == sources + sources * sinks + sinks
        assert set(f"y{j}" for j in range(sinks)) <= set(composition.outputs)

    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_clock_divider_depth(self, stages):
        components, composition = clock_divider(stages)
        assert len(components) == stages
        assert "k0" in composition.inputs
        assert f"k{stages}" in composition.outputs

    def test_divider_stage_is_endochronous(self):
        components, _ = clock_divider(1)
        assert ProcessAnalysis(components[0]).is_hierarchic()

    @pytest.mark.parametrize("modes", [2, 3])
    def test_mode_automaton_outputs_per_mode(self, modes):
        _, composition = mode_automaton(modes)
        assert {f"modes_y{j}" for j in range(modes)} <= set(composition.outputs)

    def test_random_network_is_seeded(self):
        first = random_network(random.Random(9), size=3)
        second = random_network(random.Random(9), size=3)
        assert canonical_digest(first[0]) == canonical_digest(second[0])


class TestSampledDesigns:
    def test_sample_design_is_deterministic(self):
        first = sample_design(17)
        second = sample_design(17)
        assert first.family == second.family
        assert canonical_digest(first.components) == canonical_digest(second.components)

    def test_design_space_covers_many_families(self):
        families = {design.family for design in design_space(range(40))}
        assert len(families) >= 6

    def test_every_family_is_reachable_by_restriction(self):
        for family in FAMILIES:
            design = sample_design(0, families=(family,))
            assert design.family == family
            assert design.components

    def test_generated_design_carries_provenance(self):
        design = sample_design(4)
        assert design.seed == 4
        assert design.name.endswith("_s4")
        assert isinstance(design.params, dict)

    def test_design_method_bridges_to_the_api(self):
        generated = sample_design(1)
        design = generated.design()
        assert design.digest()
        assert len(design.components) == len(generated.components)

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            sample_design(0, families=("hypercube",))


class TestLibraryShim:
    """repro.library.generators re-exports the migrated topology helpers."""

    def test_reexports_are_the_same_objects(self):
        from repro.library import generators

        assert generators.pipeline_network is pipeline_network
        assert generators.star_network is star_network
        assert generators.chain_of_buffers is chain_of_buffers
        assert generators.independent_components is independent_components

    def test_migrated_families_behave_as_before(self):
        components, composition = pipeline_network(3)
        assert len(components) == 3
        assert "x0" in composition.inputs and "x3" in composition.outputs
        components, composition = star_network(2)
        assert "x" in components[0].outputs
        components, composition = chain_of_buffers(2)
        assert "y0" in composition.inputs and "y2" in composition.outputs
