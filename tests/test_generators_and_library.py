"""Tests for the process library and the synthetic network generators."""

import pytest

from repro.lang.normalize import normalize
from repro.library.basic import buffer2_process, buffer_process, filter_process, merge_process
from repro.library.generators import (
    chain_of_buffers,
    independent_components,
    pipeline_network,
    star_network,
)
from repro.library.ltta import ltta_components
from repro.library.producer_consumer import normalized_suite
from repro.properties.compilable import ProcessAnalysis
from repro.semantics.interpreter import ABSENT, SignalInterpreter


class TestLibraryProcesses:
    def test_every_library_process_is_compilable(self, ltta_parts):
        processes = [
            normalize(filter_process()),
            normalize(merge_process()),
            normalize(buffer_process()),
            normalize(buffer2_process()),
        ]
        processes.extend(normalized_suite().values())
        processes.extend(ltta_parts.values())
        for process in processes:
            analysis = ProcessAnalysis(process)
            assert analysis.is_compilable(), process.name

    def test_filter_renaming_parameters(self):
        definition = filter_process(name="edge", input_name="sig", output_name="pulse")
        normalized = normalize(definition)
        assert normalized.inputs == ("sig",)
        assert normalized.outputs == ("pulse",)

    def test_buffer2_carries_value_and_flag_synchronously(self):
        process = normalize(buffer2_process())
        interpreter = SignalInterpreter(process)
        write = interpreter.step({"y": 42, "b": True})
        assert not write.present("x")
        read = interpreter.step({"y": ABSENT, "b": ABSENT}, assume={"buffer2_t": True})
        assert read.value("x") == 42
        assert read.value("c") is True

    def test_writer_alternates_flag(self, ltta_parts):
        writer = ltta_parts["writer"]
        interpreter = SignalInterpreter(writer)
        flags = []
        for value in (10, 20, 30):
            result = interpreter.step({"xw": value, "cw": True})
            assert result.value("yw") == value
            flags.append(result.value("bw"))
        assert flags == [False, True, False]

    def test_reader_extracts_on_flag_change(self, ltta_parts):
        reader = ltta_parts["reader"]
        interpreter = SignalInterpreter(reader)
        outputs = []
        # the flag changes at the 1st, 3rd and 4th samples
        samples = [(1, False), (2, False), (3, True), (4, False)]
        for value, flag in samples:
            result = interpreter.step({"yr": value, "br": flag, "cr": True})
            outputs.append(result.value("xr") if result.present("xr") else None)
        assert outputs == [1, None, 3, 4]


class TestGeneratorsShim:
    """The ``repro.library.generators`` shim mirrors ``repro.gen.topologies``."""

    def test_export_set_matches_topologies_exactly(self):
        import repro.gen.topologies as topologies
        import repro.library.generators as generators

        assert generators.__all__ == list(topologies.__all__)

    def test_every_export_resolves_to_the_topologies_object(self):
        import repro.gen.topologies as topologies
        import repro.library.generators as generators

        for name in topologies.__all__:
            assert getattr(generators, name) is getattr(topologies, name), name

    def test_dir_covers_the_export_set(self):
        import repro.gen.topologies as topologies
        import repro.library.generators as generators

        assert set(topologies.__all__) <= set(dir(generators))

    def test_unknown_attribute_raises(self):
        import repro.library.generators as generators

        with pytest.raises(AttributeError):
            generators.definitely_not_a_family


class TestGenerators:
    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_independent_components_scale(self, size):
        components, composition = independent_components(size)
        assert len(components) == size
        analysis = ProcessAnalysis(composition)
        assert analysis.root_count() == size
        assert analysis.is_compilable()

    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_pipeline_components_are_endochronous(self, length):
        components, composition = pipeline_network(length)
        assert len(components) == length
        for component in components:
            assert ProcessAnalysis(component).is_hierarchic()
        assert ProcessAnalysis(composition).is_compilable()

    def test_pipeline_signal_chaining(self):
        components, composition = pipeline_network(3)
        assert "x0" in composition.inputs
        assert "x3" in composition.outputs

    def test_star_network_shares_the_source_output(self):
        components, composition = star_network(2)
        assert "x" in components[0].outputs
        assert all("x" in component.inputs for component in components[1:])

    def test_chain_of_buffers_is_a_fifo_chain(self):
        components, composition = chain_of_buffers(2)
        assert len(components) == 2
        assert "y0" in composition.inputs
        assert "y2" in composition.outputs
