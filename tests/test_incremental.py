"""Incremental re-verification over the artifact graph.

The acceptance-critical behaviors pinned here:

* editing one component of a 4-component design and re-running ``verify``
  recomputes artifacts **only** for the changed component and the
  composition-level obligations — pinned on the per-stage computation
  counters of the artifact graph;
* a fresh session over a warm store answers the criterion without building
  a single :class:`ProcessAnalysis`;
* the invalidation-correctness oracle (hypothesis): for a random design
  edit, artifacts of untouched components are reused byte-identically and
  the verdicts equal a from-scratch run.
"""

from __future__ import annotations

import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.session import Design
from repro.lang.builder import ProcessBuilder, signal
from repro.lang.normalize import NormalizedProcess, normalize
from repro.service.store import ArtifactStore

#: structurally distinct, interface-identical bodies for stage ``i``:
#: every flavor maps input ``s{i}`` to output ``s{i+1}`` and is endochronous
FLAVORS = ("copy", "negate", "guarded", "delayed")


def _stage(index: int, flavor: str) -> NormalizedProcess:
    source, target = f"s{index}", f"s{index + 1}"
    builder = ProcessBuilder(f"stage{index}", inputs=[source], outputs=[target])
    if flavor == "copy":
        builder.define(target, signal(source))
    elif flavor == "negate":
        builder.define(target, signal(source).not_())
    elif flavor == "guarded":
        builder.define(target, signal(source).and_(signal(source).not_()).or_(signal(source)))
    elif flavor == "delayed":
        builder.define(target, signal(source).pre(True).and_(signal(source)))
    else:  # pragma: no cover - guarded by FLAVORS
        raise ValueError(flavor)
    return normalize(builder.build())


def _chain_design(flavors, store=None) -> Design:
    design = Design(
        name="chain",
        components=[_stage(index, flavor) for index, flavor in enumerate(flavors)],
    )
    if store is not None:
        design.context.artifact_cache = store
    return design


def _stage_deltas(design, before):
    after = design.context.graph.counters
    return {
        stage: {
            field: counters[field] - before.get(stage, {}).get(field, 0)
            for field in counters
        }
        for stage, counters in after.items()
    }


def _snapshot(design):
    return {stage: dict(counters) for stage, counters in design.context.graph.counters.items()}


def test_editing_one_component_recomputes_only_its_artifacts(tmp_path):
    """The acceptance pin: O(changed component), not O(design)."""
    store = ArtifactStore(tmp_path / "store")
    design = _chain_design(["copy", "copy", "copy", "copy"], store)
    assert design.verify("weakly-hierarchic").holds
    cold = design.stats()["stages"]
    assert cold["diagnosis"]["computed"] == 4
    assert cold["analysis"]["computed"] == 5  # 4 components + the composition
    assert cold["obligations"]["computed"] == 1

    before = _snapshot(design)
    design.replace_component(2, _stage(2, "negate"))
    assert design.verify("weakly-hierarchic").holds
    delta = _stage_deltas(design, before)

    # exactly one component diagnosis recomputed; the other three hit memory
    assert delta["diagnosis"]["computed"] == 1
    assert delta["diagnosis"]["hits"] == 3
    # analyses: the edited component and the new composition, nothing else
    assert delta["analysis"]["computed"] == 2
    # the composition-level obligations and the design verdict move keys
    assert delta["obligations"]["computed"] == 1
    assert delta["verdict"]["computed"] == 1
    # dependency-tracked invalidation dropped the stale nodes, counted
    assert delta["diagnosis"]["invalidated"] == 1
    assert delta["verdict"]["invalidated"] == 1


def test_warm_store_serves_the_criterion_without_any_analysis(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    cold = _chain_design(["copy", "negate", "copy", "delayed"], store)
    verdict = cold.verify("weakly-hierarchic")
    assert verdict.holds

    warm = _chain_design(["copy", "negate", "copy", "delayed"], ArtifactStore(tmp_path / "store"))
    warm_verdict = warm.verify("weakly-hierarchic")
    assert warm_verdict.holds == verdict.holds
    stages = warm.stats()["stages"]
    # one verdict object read from disk; no pipeline stage ran at all
    assert stages["verdict"]["store_hits"] == 1
    assert "analysis" not in stages and "diagnosis" not in stages

    # criterion() assembles the CompositionVerdict from persisted artifacts
    report = warm.criterion()
    assert report.weakly_hierarchic()
    assert warm.stats()["stages"]["diagnosis"]["store_hits"] == 4
    assert warm.stats()["stages"]["obligations"]["store_hits"] == 1
    assert "analysis" not in warm.stats()["stages"]
    # the composition analysis is supplied lazily, only when asked for
    assert report.analysis is None
    assert report.composition_analysis() is not None
    assert warm.stats()["stages"]["analysis"]["computed"] == 1


def test_edited_warm_session_recomputes_only_the_edit(tmp_path):
    """Fresh session + warm store + one edited component: untouched
    components come back from disk, the edit and the composition recompute."""
    store_root = tmp_path / "store"
    cold = _chain_design(["copy", "copy", "copy", "copy"], ArtifactStore(store_root))
    assert cold.verify("weakly-hierarchic").holds

    edited = _chain_design(["copy", "negate", "copy", "copy"], ArtifactStore(store_root))
    assert edited.verify("weakly-hierarchic").holds
    stages = edited.stats()["stages"]
    assert stages["diagnosis"]["store_hits"] == 3
    assert stages["diagnosis"]["computed"] == 1
    assert stages["analysis"]["computed"] == 2  # edited component + composition
    assert stages["obligations"]["computed"] == 1


def test_replacing_with_an_identical_component_invalidates_nothing(tmp_path):
    design = _chain_design(["copy", "copy", "copy", "copy"])
    assert design.verify("weakly-hierarchic").holds
    before = _snapshot(design)
    design.replace_component(1, _stage(1, "copy"))  # same content, new object
    assert design.verify("weakly-hierarchic").holds
    delta = _stage_deltas(design, before)
    assert delta["diagnosis"].get("invalidated", 0) == 0
    # same content -> same design digest -> the verdict node itself hits;
    # no downstream stage is even consulted
    assert delta["verdict"]["hits"] == 1 and delta["verdict"]["computed"] == 0
    assert delta["diagnosis"]["computed"] == 0
    assert delta["analysis"]["computed"] == 0


def test_remove_component_drops_only_its_artifacts():
    design = _chain_design(["copy", "negate", "copy"])
    assert design.verify("weakly-hierarchic").holds
    before = _snapshot(design)
    design.remove_component(2)
    delta = _stage_deltas(design, before)
    assert delta["diagnosis"]["invalidated"] == 1
    assert delta["analysis"]["invalidated"] == 1
    assert len(design.components) == 2
    assert design.verify("weakly-hierarchic").holds
    assert _stage_deltas(design, before)["diagnosis"]["hits"] == 2


def test_custom_composition_gets_its_own_artifact_keys(tmp_path):
    """A design built with an explicit ``composition=`` that differs from the
    plain compose must not adopt the default composition's verdicts — from
    the store or from a shared context's memory tier."""
    components = [_stage(0, "copy"), _stage(2, "copy")]  # independent stages
    cyclic = ProcessBuilder("cyc", inputs=[], outputs=["u", "v"])
    cyclic.define("u", signal("v"))
    cyclic.define("v", signal("u"))  # instantaneous cycle: not acyclic
    custom = normalize(cyclic.build())

    plain = _chain_design_components(components, ArtifactStore(tmp_path / "store"))
    assert plain.verify("weakly-hierarchic").holds

    warped = Design(name="chain", components=list(components), composition=custom)
    warped.context.artifact_cache = ArtifactStore(tmp_path / "store")
    assert plain.digest() != warped.digest()
    assert not warped.verify("weakly-hierarchic").holds

    # same conflation guarded on the memory tier of one shared context
    from repro.api.session import AnalysisContext

    context = AnalysisContext()
    assert Design(name="chain", components=list(components), context=context).verify(
        "weakly-hierarchic"
    ).holds
    shared = Design(
        name="chain", components=list(components), composition=custom, context=context
    )
    assert not shared.verify("weakly-hierarchic").holds


def _chain_design_components(components, store=None) -> Design:
    design = Design(name="chain", components=list(components))
    if store is not None:
        design.context.artifact_cache = store
    return design


def test_shared_context_edit_keeps_the_other_designs_artifacts():
    """Invalidation is reference-counted: a design replacing a component must
    not drop artifacts another design on the same context still addresses."""
    from repro.api.session import AnalysisContext

    context = AnalysisContext()
    first = Design(
        name="one", components=[_stage(0, "copy"), _stage(1, "negate")], context=context
    )
    second = Design(name="two", components=[_stage(0, "copy")], context=context)
    assert first.verify("weakly-hierarchic").holds
    assert second.verify("weakly-hierarchic").holds

    before = dict(context.graph.counters["diagnosis"])
    first.replace_component(0, _stage(0, "delayed"))
    assert first.verify("weakly-hierarchic").holds
    assert second.verify("weakly-hierarchic").holds
    delta = {
        field: context.graph.counters["diagnosis"][field] - before[field]
        for field in before
    }
    # only the replacement stage was diagnosed; stage0's artifacts survived
    # for `second`, so nothing of its was invalidated or recomputed
    assert delta["computed"] == 1
    assert delta["invalidated"] == 0


def test_repeated_edits_do_not_accumulate_stale_memory_nodes():
    """Edits supersede the old design/composition digests: a long-lived
    session editing in place keeps a bounded memory tier instead of piling
    up one stale composed analysis and obligations node per edit."""
    design = _chain_design(["copy", "copy", "copy", "copy"])
    design.verify("weakly-hierarchic")
    design.criterion()
    graph = design.context.graph
    base_analysis = len(graph.nodes("analysis"))
    base_obligations = len(graph.nodes("obligations"))
    for flavor in ("negate", "delayed", "guarded", "negate", "copy", "delayed"):
        design.replace_component(2, _stage(2, flavor))
        assert design.verify("weakly-hierarchic").holds
        design.criterion()
    assert len(graph.nodes("analysis")) <= base_analysis + 1
    assert len(graph.nodes("obligations")) <= base_obligations + 1


def test_component_design_does_not_disable_invalidation():
    """Cached sub-designs release their digest references when the parent
    discards them, so a later replace still invalidates the old component."""
    design = _chain_design(["copy", "copy", "copy"])
    assert design.verify("weakly-hierarchic").holds
    design.component_design(1).verify("non-blocking", method="compiled")
    before = design.context.graph.counters["diagnosis"]["invalidated"]
    design.replace_component(1, _stage(1, "negate"))
    assert design.verify("weakly-hierarchic").holds
    assert design.context.graph.counters["diagnosis"]["invalidated"] - before == 1


def test_service_artifact_stats_count_shared_contexts_once():
    """Two designs registered over one shared context report one graph."""
    import asyncio

    from repro.api.session import AnalysisContext
    from repro.service import VerificationService

    context = AnalysisContext()
    first = Design(name="one", components=[_stage(0, "copy")], context=context)
    second = Design(name="two", components=[_stage(1, "copy")], context=context)
    service = VerificationService()
    digest = service.register(first)
    service.register(second)
    asyncio.run(service.verify(digest, "non-blocking", method="compiled"))
    artifacts = service.stats()["artifacts"]
    assert artifacts["sessions"] == 2 and artifacts["contexts"] == 1
    assert (
        artifacts["stages"]["analysis"]["computed"]
        == context.graph.counters["analysis"]["computed"]
    )
    service.close()


def _store_bytes(store: ArtifactStore, digests):
    """Every stored object of the given digests, as raw bytes."""
    contents = {}
    for digest in digests:
        directory = store.root / "objects" / digest[:2] / digest
        if directory.is_dir():
            for path in sorted(directory.glob("*.json")):
                contents[(digest, path.name)] = path.read_bytes()
    return contents


@given(
    flavors=st.lists(st.sampled_from(FLAVORS), min_size=4, max_size=5),
    edit=st.data(),
)
@settings(max_examples=10, deadline=None)
def test_random_edit_reuses_untouched_artifacts_byte_identically(flavors, edit):
    """The invalidation-correctness oracle.

    For a random design and a random one-component edit: (1) the persisted
    artifacts of every untouched component are byte-identical before and
    after the edited re-verification, and (2) the edited design's verdict
    equals a from-scratch run with no store and no shared memo.
    """
    index = edit.draw(st.integers(min_value=0, max_value=len(flavors) - 1))
    replacement = edit.draw(st.sampled_from(FLAVORS))
    store_root = tempfile.mkdtemp(prefix="repro-incremental-")
    try:
        store = ArtifactStore(store_root)
        design = _chain_design(flavors, store)
        design.verify("weakly-hierarchic")
        design.verify("non-blocking", method="compiled")

        untouched = [
            design.context.digest_of(component)
            for position, component in enumerate(design.components)
            if position != index
        ]
        before_bytes = _store_bytes(store, untouched)
        assert before_bytes, "cold run must have persisted per-component artifacts"

        design.replace_component(index, _stage(index, replacement))
        edited_criterion = design.verify("weakly-hierarchic")
        edited_nonblocking = design.verify("non-blocking", method="compiled")

        # (1) untouched components' artifacts were reused byte-identically,
        # never rewritten.  (New objects may legitimately appear under an
        # untouched digest: editing a neighbor can change the composition's
        # unified types, so a component is abstracted — and compiled — under
        # a different retyping than before.  Existing bytes never change.)
        after_bytes = _store_bytes(store, untouched)
        for key, content in before_bytes.items():
            assert after_bytes[key] == content, f"artifact {key} was rewritten"

        # (2) a from-scratch session (fresh context, fresh empty store)
        # reaches the same verdicts
        edited_flavors = list(flavors)
        edited_flavors[index] = replacement
        scratch = _chain_design(edited_flavors)
        for edited, prop, method in (
            (edited_criterion, "weakly-hierarchic", "auto"),
            (edited_nonblocking, "non-blocking", "compiled"),
        ):
            fresh = scratch.verify(prop, method)
            assert edited.holds == fresh.holds
            assert [(d.name, d.holds) for d in edited.diagnostics] == [
                (d.name, d.holds) for d in fresh.diagnostics
            ]
    finally:
        shutil.rmtree(store_root, ignore_errors=True)


def test_verify_many_parallel_threads_the_store_to_workers(tmp_path):
    """Workers re-open the parent's store and persist what they compute."""
    import os

    if (os.cpu_count() or 1) < 2:
        pytest.skip("process pool needs more than one core")
    store = ArtifactStore(tmp_path / "store")
    design = _chain_design(["copy", "negate", "copy"], store)
    verdicts = design.map_components("non-blocking", method="compiled", parallel=2)
    assert all(v.holds for v in verdicts)
    # per-component verdicts are content-addressed by component digest: the
    # workers' writes are now warm starts for any later session
    warm = _chain_design(["copy", "negate", "copy"], ArtifactStore(tmp_path / "store"))
    warm_verdicts = warm.map_components("non-blocking", method="compiled")
    assert [v.holds for v in warm_verdicts] == [v.holds for v in verdicts]
    assert warm.stats()["stages"]["verdict"]["store_hits"] == 3
