"""Tests of the operational interpreter on the primitive constructs of Signal."""

import pytest

from repro.lang.builder import ProcessBuilder, const, signal, tick, when_false, when_true
from repro.lang.normalize import normalize
from repro.semantics.interpreter import (
    ABSENT,
    TICK,
    ClockError,
    SignalInterpreter,
    UnderdeterminedError,
    apply_operator,
)
from repro.semantics.environment import FlowEnvironment, ReactiveEnvironment
from repro.semantics.denotational import behavior_from_run, enumerate_behaviors, run_to_completion


def build(name, inputs, outputs, definitions, constraints=(), locals_=()):
    builder = ProcessBuilder(name, inputs=inputs, outputs=outputs)
    if locals_:
        builder.local(*locals_)
    for target, expression in definitions:
        builder.define(target, expression)
    for clocks in constraints:
        builder.constrain(*clocks)
    return normalize(builder.build())


class TestPrimitives:
    def test_functional_equation_is_synchronous(self):
        process = build("add", ["a", "b"], ["x"], [("x", signal("a") + signal("b"))])
        interpreter = SignalInterpreter(process)
        result = interpreter.step({"a": 2, "b": 3})
        assert result.present("x") and result.value("x") == 5
        silent = interpreter.step({"a": ABSENT, "b": ABSENT})
        assert not silent.present("x")

    def test_functional_equation_rejects_partial_presence(self):
        process = build("add", ["a", "b"], ["x"], [("x", signal("a") + signal("b"))])
        interpreter = SignalInterpreter(process)
        with pytest.raises(ClockError):
            interpreter.step({"a": 2, "b": ABSENT})

    def test_delay_holds_previous_value(self):
        process = build("delay", ["a"], ["x"], [("x", signal("a").pre(0))])
        interpreter = SignalInterpreter(process)
        assert interpreter.step({"a": 5}).value("x") == 0
        assert interpreter.step({"a": 7}).value("x") == 5
        assert interpreter.step({"a": ABSENT}).present("x") is False
        assert interpreter.step({"a": 9}).value("x") == 7

    def test_sampling_presence_rules(self):
        process = build("sample", ["y", "c"], ["x"], [("x", signal("y").when(signal("c")))])
        interpreter = SignalInterpreter(process)
        assert interpreter.step({"y": 4, "c": True}).value("x") == 4
        assert not interpreter.step({"y": 4, "c": False}).present("x")
        assert not interpreter.step({"y": 4, "c": ABSENT}).present("x")
        assert not interpreter.step({"y": ABSENT, "c": True}).present("x")

    def test_merge_prefers_first_operand(self):
        process = build(
            "merge", ["y", "z"], ["x"], [("x", signal("y").default(signal("z")))]
        )
        interpreter = SignalInterpreter(process)
        assert interpreter.step({"y": 1, "z": 2}).value("x") == 1
        assert interpreter.step({"y": ABSENT, "z": 2}).value("x") == 2
        assert not interpreter.step({"y": ABSENT, "z": ABSENT}).present("x")

    def test_clock_constraint_propagates_presence(self):
        process = build(
            "gate",
            ["c"],
            ["x"],
            [("x", const(1) + signal("x").pre(0))],
            constraints=[(tick("x"), when_true("c"))],
        )
        interpreter = SignalInterpreter(process)
        assert interpreter.step({"c": True}).value("x") == 1
        assert not interpreter.step({"c": False}).present("x")
        assert interpreter.step({"c": True}).value("x") == 2

    def test_clock_constraint_violation_is_detected(self):
        process = build(
            "sync2",
            ["a", "b"],
            ["x"],
            [("x", signal("a") + 0)],
            constraints=[(tick("a"), tick("b"))],
        )
        interpreter = SignalInterpreter(process)
        with pytest.raises(ClockError):
            interpreter.step({"a": 1, "b": ABSENT}, default_absent=True)

    def test_assume_tick_forces_presence_without_value(self):
        process = build(
            "counter",
            [],
            ["x"],
            [("x", const(1) + signal("x").pre(0))],
        )
        interpreter = SignalInterpreter(process)
        result = interpreter.step(assume={"x": TICK})
        assert result.value("x") == 1
        result = interpreter.step(assume={"x": TICK})
        assert result.value("x") == 2

    def test_unknown_signal_rejected(self):
        process = build("id", ["a"], ["x"], [("x", signal("a"))])
        interpreter = SignalInterpreter(process)
        with pytest.raises(KeyError):
            interpreter.step({"nope": 1})

    def test_try_step_returns_none_and_preserves_state(self):
        process = build("delay", ["a"], ["x"], [("x", signal("a").pre(0))])
        interpreter = SignalInterpreter(process)
        interpreter.step({"a": 3})
        snapshot = interpreter.snapshot_state()
        process_sync = build(
            "sync2",
            ["a", "b"],
            ["x"],
            [("x", signal("a") + 0)],
            constraints=[(tick("a"), tick("b"))],
        )
        bad = SignalInterpreter(process_sync)
        assert bad.try_step({"a": 1, "b": ABSENT}) is None
        assert interpreter.snapshot_state() == snapshot

    def test_operator_evaluation(self):
        assert apply_operator("+", (2, 3)) == 5
        assert apply_operator("/=", (2, 3)) is True
        assert apply_operator("and", (True, False)) is False
        assert apply_operator("not", (False,)) is True
        with pytest.raises(ValueError):
            apply_operator("??", (1, 2))


class TestPaperFilterTrace:
    def test_filter_emits_on_changes(self, filter_normalized):
        """Section 2's worked trace: y = 1 0 0 1 1 0 gives x at instants 2, 4, 6."""
        interpreter = SignalInterpreter(filter_normalized)
        stream = [True, False, False, True, True, False]
        emissions = []
        for index, value in enumerate(stream, start=1):
            result = interpreter.step({"y": value})
            if result.present("x"):
                emissions.append(index)
                assert result.value("x") is True
        assert emissions == [2, 4, 6]


class TestEnvironmentsAndRuns:
    def test_reactive_environment_completes_absences(self):
        environment = ReactiveEnvironment(["a", "b"], [{"a": 1}, {"b": 2}])
        first = environment.instant(0)
        assert first["a"] == 1 and first["b"] is ABSENT

    def test_reactive_environment_rejects_unknown_signals(self):
        with pytest.raises(ValueError):
            ReactiveEnvironment(["a"], [{"b": 1}])

    def test_flow_environment_pop_and_push_back(self):
        flows = FlowEnvironment({"a": [1, 2]})
        assert flows.peek("a") == 1
        assert flows.pop("a") == 1
        flows.push_back("a", 1)
        assert flows.pop("a") == 1
        assert flows.pop("a") == 2
        assert flows.exhausted()

    def test_run_to_completion_and_behavior(self, filter_normalized):
        environment = ReactiveEnvironment(
            ["y"], [{"y": True}, {"y": False}, {"y": False}, {"y": True}]
        )
        results = run_to_completion(filter_normalized, environment)
        behavior = behavior_from_run(results, ["x", "y"])
        assert behavior["y"].values == (True, False, False, True)
        assert behavior["x"].values == (True, True)

    def test_enumerate_behaviors_filter_is_deterministic(self, filter_normalized):
        process = enumerate_behaviors(
            filter_normalized, {"y": [True, False]}, signals=["x", "y"]
        )
        assert len(process.flow_classes()) == 1

    def test_enumerate_behaviors_respects_max_behaviors(self, filter_normalized):
        process = enumerate_behaviors(
            filter_normalized, {"y": [True, False, True]}, max_behaviors=1
        )
        assert len(process) <= 1
