"""Unit tests for the Signal front-end: builder, normalization, types, validation."""

import pytest

from repro.lang.ast import (
    BinaryOp,
    ClockConstraint,
    ClockOf,
    ClockTrue,
    Composition,
    Const,
    Default,
    Definition,
    Pre,
    Ref,
    Restriction,
    When,
    compose,
)
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_false, when_true
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    NormalizedProcess,
    SamplingEquation,
    normalize,
)
from repro.lang.validate import ValidationError, validate_process
from repro.library.basic import filter_process
from repro.library.producer_consumer import consumer_process, main_process, registry


class TestAST:
    def test_free_signals_of_expressions(self):
        expression = Default(When(Ref("y"), Ref("c")), Pre(Ref("z"), 0))
        assert expression.free_signals() == {"y", "c", "z"}

    def test_free_signals_of_statements(self):
        statement = Definition("x", BinaryOp("+", Ref("a"), Const(1)))
        assert statement.free_signals() == {"x", "a"}
        assert statement.defined_signals() == {"x"}

    def test_restriction_hides_signals(self):
        inner = Definition("x", Ref("y"))
        restricted = Restriction(inner, ("y",))
        assert restricted.free_signals() == {"x"}

    def test_compose_flattens(self):
        one = Definition("x", Ref("a"))
        two = Definition("y", Ref("b"))
        three = Definition("z", Ref("c"))
        combined = compose(compose(one, two), three)
        assert isinstance(combined, Composition)
        assert len(combined.statements) == 3

    def test_clock_constraint_requires_two_clocks(self):
        with pytest.raises(ValueError):
            ClockConstraint((ClockOf("x"),))


class TestBuilder:
    def test_operator_wrappers(self):
        expression = (signal("a") + 1).node
        assert isinstance(expression, BinaryOp) and expression.operator == "+"
        assert isinstance(signal("a").ne(signal("b")).node, BinaryOp)
        assert isinstance(signal("a").pre(0).node, Pre)
        assert isinstance(const(True).when("c").node, When)
        assert isinstance(signal("a").default(1).node, Default)

    def test_builder_produces_definition_with_locals(self):
        builder = ProcessBuilder("p", inputs=["a"], outputs=["b"])
        builder.local("tmp")
        builder.define("tmp", signal("a") + 1)
        builder.define("b", signal("tmp") * 2)
        definition = builder.build()
        assert definition.inputs == ("a",)
        assert definition.outputs == ("b",)
        assert "tmp" in definition.locals

    def test_builder_requires_equations(self):
        with pytest.raises(ValueError):
            ProcessBuilder("empty").build()

    def test_synchronize_builds_clock_constraint(self):
        builder = ProcessBuilder("p", inputs=["a", "b"], outputs=["c"])
        builder.synchronize("a", "b")
        builder.define("c", signal("a") + signal("b"))
        definition = builder.build()
        assert any(isinstance(node, ClockConstraint) for node in definition.body.statements)


class TestNormalization:
    def test_filter_normalizes_to_three_equations(self):
        normalized = normalize(filter_process())
        kinds = [type(equation) for equation in normalized.equations]
        assert kinds.count(DelayEquation) == 1
        assert kinds.count(SamplingEquation) == 1
        assert kinds.count(FunctionEquation) == 1

    def test_nested_expressions_create_fresh_locals(self):
        builder = ProcessBuilder("nested", inputs=["a", "b"], outputs=["x"])
        builder.define("x", (signal("a") + signal("b")).when(signal("a").gt(0)))
        normalized = normalize(builder.build())
        assert len(normalized.equations) == 3
        assert any(name.startswith("_x") for name in normalized.locals)

    def test_constant_default_adopts_result_clock(self):
        """``x default 1``: the constant branch must be synchronized with the result."""
        normalized = normalize(consumer_process())
        clock_equations = [eq for eq in normalized.equations if isinstance(eq, ClockEquation)]
        merge_targets = [eq.target for eq in normalized.equations if isinstance(eq, MergeEquation)]
        assert merge_targets
        assert any(
            isinstance(eq.right, ClockOf) and eq.right.name in merge_targets
            for eq in clock_equations
        )

    def test_cell_expansion(self):
        builder = ProcessBuilder("cellp", inputs=["y", "c"], outputs=["x"])
        builder.define("x", signal("y").cell(signal("c"), 0))
        normalized = normalize(builder.build())
        assert any(isinstance(eq, DelayEquation) for eq in normalized.equations)
        assert any(isinstance(eq, MergeEquation) for eq in normalized.equations)
        assert any(isinstance(eq, ClockEquation) for eq in normalized.equations)

    def test_instantiation_inlines_and_renames_locals(self):
        normalized = normalize(main_process(), registry())
        # the producer's and consumer's internal delays are present, renamed apart
        delay_targets = {eq.target for eq in normalized.equations if isinstance(eq, DelayEquation)}
        assert len(delay_targets) == 3
        assert all(target not in ("u", "v", "x") for target in delay_targets)

    def test_instantiation_unknown_process_raises(self):
        with pytest.raises(KeyError):
            normalize(main_process(), {})

    def test_instantiation_arity_mismatch(self):
        builder = ProcessBuilder("bad", inputs=["a"], outputs=["u"])
        builder.instantiate("producer", ["a", "a"], ["u"])
        with pytest.raises(ValueError):
            normalize(builder.build(), registry())

    def test_type_inference(self):
        normalized = normalize(filter_process())
        assert normalized.types["y"] == "bool"
        assert normalized.types["x"] == "bool"
        consumer = normalize(consumer_process())
        assert consumer.types["b"] == "bool"
        assert consumer.types["v"] == "num"
        assert consumer.types["x"] == "num"

    def test_state_signals(self):
        normalized = normalize(filter_process())
        assert normalized.state_signals() == ("x_prev",)

    def test_compose_merges_interfaces(self):
        from repro.library.basic import filter_merge_composition

        suite = filter_merge_composition()
        composition = suite["composition"]
        assert "x" in composition.outputs  # produced by the filter
        assert "y" in composition.inputs
        assert set(composition.inputs).isdisjoint(set(composition.outputs))

    def test_conflicting_type_evidence_terminates(self):
        """Composing processes that reuse a name with different types must not loop.

        The filter gives ``x`` a boolean type, the producer a numeric one;
        type inference keeps the first concrete type instead of oscillating.
        """
        from repro.library.basic import filter_merge_composition
        from repro.library.producer_consumer import normalized_suite

        conflicting = filter_merge_composition()["composition"].compose(
            normalized_suite()["producer"]
        )
        assert conflicting.types["x"] in ("bool", "num")

    def test_hide_moves_signals_to_locals(self):
        normalized = normalize(filter_process())
        hidden = normalized.hide(["x"])
        assert "x" not in hidden.outputs
        assert "x" in hidden.locals


class TestValidation:
    def test_filter_is_valid(self):
        assert validate_process(filter_process()) is not None

    def test_double_definition_is_reported(self):
        builder = ProcessBuilder("dup", inputs=["a"], outputs=["x"])
        builder.define("x", signal("a"))
        builder.define("x", signal("a") + 1)
        with pytest.raises(ValidationError) as excinfo:
            validate_process(builder.build())
        assert "defined by 2 equations" in str(excinfo.value)

    def test_missing_output_definition_is_reported(self):
        builder = ProcessBuilder("missing", inputs=["a"], outputs=["x", "y"])
        builder.define("x", signal("a"))
        with pytest.raises(ValidationError) as excinfo:
            validate_process(builder.build())
        assert "'y'" in str(excinfo.value)

    def test_defined_input_is_reported(self):
        builder = ProcessBuilder("bad_input", inputs=["a"], outputs=["x"])
        builder.define("a", const(1))
        builder.define("x", signal("a"))
        with pytest.raises(ValidationError) as excinfo:
            validate_process(builder.build())
        assert "input signal 'a'" in str(excinfo.value)
