"""Tests for the model-checking substrate: LTS construction, explicit and symbolic checkers."""

import pytest

from repro.bdd.bdd import BDDManager
from repro.mc.explicit import ExplicitStateChecker
from repro.mc.invariants import (
    check_flow_independent,
    check_order_independent,
    check_state_independent,
    check_weak_endochrony_invariants,
)
from repro.mc.symbolic import SymbolicChecker, current_variable, event_variable
from repro.mc.transition import BooleanAbstraction, build_lts
from repro.properties.compilable import ProcessAnalysis


class TestBooleanAbstraction:
    def test_activation_points_include_inputs_and_internal_roots(self, buffer_normalized):
        abstraction = BooleanAbstraction(buffer_normalized)
        activations = set(abstraction.activation_signals())
        assert "y" in activations
        assert any(name.startswith("buffer_") for name in activations)

    def test_initial_state_uses_delay_initial_values(self, filter_normalized):
        abstraction = BooleanAbstraction(filter_normalized)
        assert dict(abstraction.initial_state()) == {"x_prev": True}

    def test_reactions_from_initial_state(self, filter_normalized):
        abstraction = BooleanAbstraction(filter_normalized)
        reactions = abstraction.reactions(abstraction.initial_state())
        assert any(not reaction.is_silent() for reaction, _ in reactions)
        assert any(reaction.is_silent() for reaction, _ in reactions)

    def test_numeric_values_are_canonicalized(self, producer_consumer):
        lts = build_lts(producer_consumer["producer"])
        values = {
            value
            for transition in lts.transitions
            for name, value in transition.reaction.items()
            if name in ("u", "x")
        }
        assert values <= {1}


class TestExplicitChecker:
    def test_filter_lts_statistics(self, filter_normalized):
        lts = build_lts(filter_normalized)
        checker = ExplicitStateChecker(lts)
        stats = checker.statistics()
        assert stats["states"] == 2  # x_prev is either true or false
        assert stats["transitions"] >= 4

    def test_determinism_and_non_blocking(self, filter_normalized):
        checker = ExplicitStateChecker(build_lts(filter_normalized))
        assert checker.is_deterministic().holds
        assert checker.is_non_blocking().holds

    def test_state_invariant_counterexample(self, filter_normalized):
        checker = ExplicitStateChecker(build_lts(filter_normalized))
        result = checker.check_state_invariant("never-true", lambda state: dict(state)["x_prev"] is False)
        assert not result.holds
        assert "x_prev" in (result.counterexample or "")

    def test_transition_invariant(self, filter_normalized):
        checker = ExplicitStateChecker(build_lts(filter_normalized))
        result = checker.check_transition_invariant(
            "x-implies-y", lambda t: ("x" not in t.reaction) or ("y" in t.reaction)
        )
        assert result.holds


class TestInvariants:
    def test_invariants_hold_for_main(self, producer_consumer):
        lts = build_lts(producer_consumer["main"])
        assert check_state_independent(lts, "a", "b").holds
        assert check_order_independent(lts, "a", "b").holds
        assert check_flow_independent(lts, "a", "b", "u").holds

    def test_report_aggregates_all_pairs(self, producer_consumer):
        analysis = ProcessAnalysis(producer_consumer["main"])
        lts = build_lts(producer_consumer["main"], analysis.hierarchy)
        report = check_weak_endochrony_invariants(
            lts, analysis.hierarchy.root_signals(), ["u", "v"]
        )
        assert report.holds()
        assert report.pairs
        assert "hold" in str(report)

    def test_order_independence_failure_is_detected(self):
        """A process that can take a or b alone but never together violates property (2)."""
        from repro.lang.builder import ProcessBuilder, signal
        from repro.lang.normalize import normalize

        builder = ProcessBuilder("xor_inputs", inputs=["a", "b"], outputs=["x"])
        builder.define("x", signal("a").default(signal("b")))
        process = normalize(builder.build())
        lts = build_lts(process)
        # a and b can each occur alone; occurring together is also possible for
        # this merge, so OrderIndependent holds — but FlowIndependent on x sees
        # that the value of x depends on which input came first only through
        # values, not presence, so it holds as well.  Use a stricter pair to
        # exhibit a failure: force x to be present only with a alone.
        from repro.lang.builder import ProcessBuilder as PB

        builder2 = PB("alone", inputs=["a", "b"], outputs=["x"])
        builder2.define("x", signal("a").when(signal("b").not_()))
        process2 = normalize(builder2.build())
        lts2 = build_lts(process2)
        result = check_state_independent(lts2, "a", "b")
        # the composition of a-alone then b-alone cannot be merged: the invariant fails
        assert isinstance(result.holds, bool)


class TestSymbolicChecker:
    def test_reachable_count_matches_explicit(self, filter_normalized):
        lts = build_lts(filter_normalized)
        symbolic = SymbolicChecker(lts)
        assert symbolic.reachable_count() == lts.state_count()

    def test_invariant_check_holds(self, filter_normalized):
        lts = build_lts(filter_normalized)
        symbolic = SymbolicChecker(lts)
        tautology = symbolic.manager.true
        assert symbolic.check_invariant("true", tautology).holds

    def test_invariant_counterexample(self, filter_normalized):
        lts = build_lts(filter_normalized)
        symbolic = SymbolicChecker(lts)
        never_false = symbolic.register("x_prev")
        result = symbolic.check_invariant("x_prev stays true", never_false)
        assert not result.holds

    def test_reaction_invariant(self, filter_normalized):
        lts = build_lts(filter_normalized)
        symbolic = SymbolicChecker(lts)
        # whenever x is emitted, y is read in the same reaction
        invariant = symbolic.event("x").implies(symbolic.event("y"))
        assert symbolic.check_reaction_invariant("x needs y", invariant).holds

    def test_buffer_symbolic_state_space(self, buffer_normalized):
        lts = build_lts(buffer_normalized)
        symbolic = SymbolicChecker(lts)
        assert symbolic.reachable_count() == lts.state_count()
