"""Unit tests for behaviors, reactions and the model-of-computation equivalences."""

import pytest

from repro.mocc.behaviors import (
    Behavior,
    clock_equivalent,
    flow_equivalent,
    is_relaxation,
    is_stretching,
)
from repro.mocc.processes import (
    DenotationalProcess,
    asynchronous_composition,
    behaviors_from_reaction_sequences,
    synchronous_composition,
)
from repro.mocc.reactions import Reaction, concatenate, independent, merge_reactions
from repro.mocc.signals import SignalTrace


def behavior(rows):
    return Behavior.from_value_rows(rows)


class TestBehavior:
    def test_domain_and_restrict(self):
        b = behavior({"x": {0: 1}, "y": {0: 2, 1: 3}})
        assert b.domain() == {"x", "y"}
        assert b.restrict(["x"]).domain() == {"x"}
        assert b.hide(["x"]).domain() == {"y"}

    def test_union_requires_agreement_on_shared(self):
        left = behavior({"x": {0: 1}})
        right = behavior({"x": {0: 1}, "y": {0: 2}})
        assert left.union(right).domain() == {"x", "y"}
        conflicting = behavior({"x": {0: 99}})
        with pytest.raises(ValueError):
            left.union(conflicting)

    def test_tags_collects_all_signals(self):
        b = behavior({"x": {0: 1, 4: 2}, "y": {2: 3}})
        assert b.tags() == (0, 2, 4)

    def test_prefix_limits_instants(self):
        b = behavior({"x": {0: 1, 4: 2}, "y": {2: 3}})
        prefix = b.prefix(2)
        assert prefix.tags() == (0, 2)

    def test_canonical_relabels_by_rank(self):
        b = behavior({"x": {10: 1}, "y": {5: 2, 20: 3}})
        canonical = b.canonical()
        assert canonical.tags() == (0, 1, 2)
        assert canonical["x"].tags == (1,)

    def test_empty_behavior(self):
        b = Behavior.empty(["x", "y"])
        assert b.is_empty()
        assert b.length() == 0


class TestEquivalences:
    def test_clock_equivalence_paper_example(self):
        """The stretching example of Section 2.1."""
        left = behavior({"y": {1: 1, 2: 0, 3: 0}, "x": {2: 1}})
        right = behavior({"y": {10: 1, 30: 0, 50: 0}, "x": {30: 1}})
        assert clock_equivalent(left, right)

    def test_clock_equivalence_fails_on_different_interleaving(self):
        left = behavior({"y": {1: 1, 2: 0}, "x": {2: 1}})
        right = behavior({"y": {1: 1, 2: 0}, "x": {1: 1}})
        assert not clock_equivalent(left, right)

    def test_flow_equivalence_paper_example(self):
        """The relaxation example of Section 2.1: same flows, different synchronization."""
        left = behavior({"y": {1: 1, 2: 0, 3: 0}, "x": {2: 1}})
        right = behavior({"y": {1: 1, 2: 0, 3: 0}, "x": {1: 1}})
        assert flow_equivalent(left, right)
        assert not clock_equivalent(left, right)

    def test_flow_equivalence_requires_same_values(self):
        left = behavior({"x": {0: 1, 1: 2}})
        right = behavior({"x": {0: 2, 1: 1}})
        assert not flow_equivalent(left, right)

    def test_stretching_requires_common_monotone_relabelling(self):
        base = behavior({"y": {0: 1, 1: 0}, "x": {1: 1}})
        stretched = behavior({"y": {0: 1, 5: 0}, "x": {5: 1}})
        assert is_stretching(base, stretched)

    def test_stretching_requires_tags_not_to_decrease(self):
        base = behavior({"y": {5: 1}})
        earlier = behavior({"y": {0: 1}})
        assert not is_stretching(base, earlier)
        assert is_stretching(earlier, base)

    def test_relaxation_is_per_signal(self):
        base = behavior({"y": {0: 1, 1: 0}, "x": {1: 7}})
        relaxed = behavior({"y": {0: 1, 2: 0}, "x": {5: 7}})
        assert is_relaxation(base, relaxed)

    def test_clock_equivalence_requires_same_domain(self):
        assert not clock_equivalent(behavior({"x": {0: 1}}), behavior({"y": {0: 1}}))


class TestReactions:
    def test_independent_reactions(self):
        domain = ("x", "y", "z")
        left = Reaction(domain, {"x": 1})
        right = Reaction(domain, {"y": 2})
        overlapping = Reaction(domain, {"x": 3})
        assert independent(left, right)
        assert not independent(left, overlapping)

    def test_merge_reactions(self):
        domain = ("x", "y")
        merged = merge_reactions(Reaction(domain, {"x": 1}), Reaction(domain, {"y": 2}))
        assert merged.present_signals() == {"x", "y"}
        assert merged.value("x") == 1 and merged.value("y") == 2

    def test_merge_rejects_overlap(self):
        domain = ("x",)
        with pytest.raises(ValueError):
            merge_reactions(Reaction(domain, {"x": 1}), Reaction(domain, {"x": 2}))

    def test_silent_reaction(self):
        reaction = Reaction(("x", "y"))
        assert reaction.is_silent()
        assert reaction.absent_signals() == {"x", "y"}

    def test_reaction_rejects_foreign_signals(self):
        with pytest.raises(ValueError):
            Reaction(("x",), {"y": 1})

    def test_concatenate_appends_after_behavior(self):
        base = behavior({"x": {0: 1}, "y": {0: 2}})
        extended = concatenate(base, Reaction(("x", "y"), {"x": 5}))
        assert extended["x"].values == (1, 5)
        assert extended["y"].values == (2,)

    def test_concatenate_paper_example(self):
        """The concatenation example of Section 2.1."""
        first = behavior({"y": {1: 1}, "x": {}})
        extended = concatenate(first, Reaction(("x", "y"), {"y": 0, "x": 1}), tag=2)
        assert extended["y"].values == (1, 0)
        assert extended["x"].tags == (2,)

    def test_as_behavior(self):
        reaction = Reaction(("x", "y"), {"x": 4})
        as_behavior = reaction.as_behavior(7)
        assert as_behavior["x"].tags == (7,)
        assert len(as_behavior["y"]) == 0


class TestDenotationalProcesses:
    def test_duplicate_behaviors_are_collapsed(self):
        b = behavior({"x": {0: 1}})
        process = DenotationalProcess(["x"], [b, b])
        assert len(process) == 1

    def test_domain_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DenotationalProcess(["x"], [behavior({"y": {0: 1}})])

    def test_synchronous_composition_glues_on_identical_interface(self):
        left = DenotationalProcess(["x", "s"], [behavior({"x": {0: 1}, "s": {0: 9}})])
        right = DenotationalProcess(["x", "t"], [behavior({"x": {0: 1}, "t": {1: 3}})])
        composed = synchronous_composition(left, right)
        assert len(composed) == 1
        assert composed.behaviors()[0].domain() == {"x", "s", "t"}

    def test_synchronous_composition_drops_disagreeing_behaviors(self):
        left = DenotationalProcess(["x"], [behavior({"x": {0: 1}})])
        right = DenotationalProcess(["x"], [behavior({"x": {0: 2}})])
        assert len(synchronous_composition(left, right)) == 0

    def test_asynchronous_composition_glues_on_flow_equivalence(self):
        left = DenotationalProcess(["x"], [behavior({"x": {0: 1, 1: 2}})])
        right = DenotationalProcess(["x", "y"], [behavior({"x": {3: 1, 9: 2}, "y": {5: 0}})])
        composed = asynchronous_composition(left, right)
        assert len(composed) == 1

    def test_flow_classes(self):
        process = DenotationalProcess(
            ["x"],
            [behavior({"x": {0: 1, 1: 2}}), behavior({"x": {4: 1, 9: 2}}), behavior({"x": {0: 3}})],
        )
        assert len(process.flow_classes()) == 2

    def test_behaviors_from_reaction_sequences(self):
        process = behaviors_from_reaction_sequences(
            ["x", "y"],
            [
                [Reaction(("x", "y"), {"x": 1}), Reaction(("x", "y"), {"y": 2})],
                [Reaction(("x", "y"), {"x": 1, "y": 2})],
            ],
        )
        assert len(process) == 2
