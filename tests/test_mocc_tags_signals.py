"""Unit tests for tags, chains and signal traces."""

import pytest

from repro.mocc.signals import SignalTrace
from repro.mocc.tags import TagSupply, chain_of, is_chain


class TestTags:
    def test_is_chain_accepts_strictly_increasing(self):
        assert is_chain((1, 2, 5, 9))

    def test_is_chain_rejects_duplicates(self):
        assert not is_chain((1, 2, 2, 3))

    def test_is_chain_rejects_unordered(self):
        assert not is_chain((3, 1, 2))

    def test_empty_and_singleton_are_chains(self):
        assert is_chain(())
        assert is_chain((7,))

    def test_chain_of_sorts_and_deduplicates(self):
        assert chain_of([5, 1, 3, 1]) == (1, 3, 5)

    def test_tag_supply_is_strictly_increasing(self):
        supply = TagSupply()
        produced = [supply.fresh() for _ in range(10)]
        assert is_chain(tuple(produced))

    def test_tag_supply_fresh_after(self):
        supply = TagSupply()
        tag = supply.fresh_after(100)
        assert tag > 100
        assert supply.fresh() > tag

    def test_tag_supply_records_produced(self):
        supply = TagSupply()
        first = supply.fresh()
        second = supply.fresh()
        assert supply.produced() == (first, second)


class TestSignalTrace:
    def test_from_values_spaces_tags(self):
        trace = SignalTrace.from_values([10, 20, 30])
        assert trace.tags == (0, 1, 2)
        assert trace.values == (10, 20, 30)

    def test_from_pairs_rejects_duplicate_tags(self):
        with pytest.raises(ValueError):
            SignalTrace.from_pairs([(0, 1), (0, 2)])

    def test_lookup_and_get(self):
        trace = SignalTrace({3: "a", 7: "b"})
        assert trace[3] == "a"
        assert trace.get(7) == "b"
        assert trace.get(5) is None
        with pytest.raises(KeyError):
            trace[5]

    def test_min_max_tags(self):
        trace = SignalTrace({3: 1, 9: 2, 5: 3})
        assert trace.min_tag() == 3
        assert trace.max_tag() == 9

    def test_min_tag_of_empty_raises(self):
        with pytest.raises(ValueError):
            SignalTrace.empty().min_tag()

    def test_relabel_preserves_values(self):
        trace = SignalTrace({1: "a", 4: "b"})
        shifted = trace.relabel(lambda tag: tag + 10)
        assert shifted.tags == (11, 14)
        assert shifted.values == ("a", "b")

    def test_relabel_rejects_non_injective_mapping(self):
        trace = SignalTrace({1: "a", 4: "b"})
        with pytest.raises(ValueError):
            trace.relabel(lambda tag: 0)

    def test_restrict_and_before(self):
        trace = SignalTrace({1: "a", 2: "b", 5: "c"})
        assert trace.restrict_to({2, 5}).tags == (2, 5)
        assert trace.before(5).tags == (1, 2)

    def test_value_at_or_before(self):
        trace = SignalTrace({1: "a", 4: "b"})
        assert trace.value_at_or_before(0, default="init") == "init"
        assert trace.value_at_or_before(3) == "a"
        assert trace.value_at_or_before(9) == "b"

    def test_append_requires_later_tag(self):
        trace = SignalTrace({2: 1})
        appended = trace.append(5, 2)
        assert appended.tags == (2, 5)
        with pytest.raises(ValueError):
            trace.append(1, 0)

    def test_concat_requires_disjoint_later_tags(self):
        early = SignalTrace({0: "a", 1: "b"})
        late = SignalTrace({2: "c"})
        assert early.concat(late).values == ("a", "b", "c")
        with pytest.raises(ValueError):
            late.concat(early)

    def test_same_flow_ignores_tags(self):
        left = SignalTrace({0: 1, 2: 2})
        right = SignalTrace({5: 1, 9: 2})
        assert left.same_flow(right)
        assert not left.same_flow(SignalTrace({0: 2, 2: 1}))

    def test_equality_and_hash(self):
        left = SignalTrace({0: 1, 2: 2})
        right = SignalTrace({0: 1, 2: 2})
        assert left == right
        assert hash(left) == hash(right)
        assert left != SignalTrace({0: 1})

    def test_iteration_order(self):
        trace = SignalTrace({5: "b", 1: "a"})
        assert list(trace) == [(1, "a"), (5, "b")]
