"""repro.obs: the tracer, the metrics registry, exporters, propagation.

Unit coverage for the primitives (span lifecycle, context propagation
across threads and carriers, registry instruments and collectors, the
Prometheus and Chrome exporters) plus the acceptance scenario the issue
pins: one traced client query produces **one** trace whose spans cover the
transport, the scheduler (including coalesced riders), the artifact-graph
stages, the store accesses and the backend execution — and that trace
exports to Chrome trace-event JSON without loss.

Tracing is process-global state, so every test runs under the autouse
``clean_obs`` fixture that resets the tracer and disables tracing on the
way out; assertions pin names, tags, parentage and events — never
wall-clock values.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import obs
from repro.obs import collect as obs_collect
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.service import (
    ArtifactStore,
    InlineBackend,
    ProcessPoolBackend,
    ServiceClient,
    ServiceError,
    ServiceServer,
    VerificationService,
)

FILTER_SOURCE = """
process filter (x) returns (y) {
  y := x when x;
}
"""


@pytest.fixture(autouse=True)
def clean_obs():
    obs_trace.reset()
    obs_metrics.reset_global()
    yield
    obs_trace.reset()
    obs_metrics.reset_global()


def spans_by_name(spans):
    table = {}
    for span in spans:
        table.setdefault(span["name"], []).append(span)
    return table


# ---------------------------------------------------------------------------
# tracer primitives
# ---------------------------------------------------------------------------

def test_spans_nest_under_the_ambient_context():
    obs_trace.configure(enabled=True)
    with obs_trace.span("outer", kind="test") as outer:
        with obs_trace.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
            assert obs_trace.current_span() is inner
        assert obs_trace.current_span() is outer
    spans = obs_trace.get_tracer().spans
    assert [span["name"] for span in spans] == ["inner", "outer"]
    assert spans[1]["parent_id"] is None
    assert spans[1]["tags"] == {"kind": "test"}


def test_tracing_off_yields_null_spans_and_records_nothing():
    assert obs_trace.TRACING is False
    with obs_trace.span("anything") as span:
        assert span is obs_trace.NULL_SPAN
        span.set_tag("ignored", 1).add_event("ignored")
        obs_trace.add_event("also-ignored")
        obs_trace.tag_current(x=1)
    assert obs_trace.get_tracer().spans == []


def test_events_and_tags_land_on_the_active_span():
    obs_trace.configure(enabled=True)
    with obs_trace.span("op") as span:
        obs_trace.add_event("fault.injected", site="exec.crash")
        obs_trace.tag_current(outcome="ok")
    assert span.tags["outcome"] == "ok"
    [event] = span.events
    assert event["name"] == "fault.injected"
    assert event["tags"] == {"site": "exec.crash"}
    assert event["offset"] >= 0


def test_traceparent_round_trips_through_a_carrier():
    obs_trace.configure(enabled=True)
    with obs_trace.span("root") as root:
        carrier = obs_trace.inject({"op": "verify"})
    context = obs_trace.extract(carrier)
    assert context == root.context
    assert obs_trace.extract({"op": "verify"}) is None
    assert obs_trace.SpanContext.from_traceparent("garbage") is None
    assert obs_trace.SpanContext.from_traceparent("") is None
    # span ids contain a dot and a hyphen-joined traceparent: rpartition
    # must split on the *last* hyphen
    parsed = obs_trace.SpanContext.from_traceparent("1a2b.3-1a2b.7")
    assert parsed == obs_trace.SpanContext("1a2b.3", "1a2b.7")


def test_activate_parents_spans_under_a_remote_context():
    obs_trace.configure(enabled=True)
    remote = obs_trace.SpanContext("cafe.1", "cafe.2")
    with obs_trace.activate(remote):
        with obs_trace.span("server.request") as span:
            assert span.trace_id == "cafe.1"
            assert span.parent_id == "cafe.2"


def test_bind_carries_context_into_another_thread():
    obs_trace.configure(enabled=True)
    seen = {}

    def worker():
        with obs_trace.span("thread.work") as span:
            seen["trace_id"] = span.trace_id
            seen["parent_id"] = span.parent_id

    with obs_trace.span("root") as root:
        bound = obs_trace.bind(worker)
    thread = threading.Thread(target=bound)
    thread.start()
    thread.join()
    assert seen == {"trace_id": root.trace_id, "parent_id": root.span_id}


def test_sampling_is_seeded_and_suppresses_descendants():
    obs_trace.configure(enabled=True, sample=0.5, seed=42)
    for _ in range(20):
        with obs_trace.span("root"):
            with obs_trace.span("child"):
                pass
    tracer = obs_trace.get_tracer()
    roots = [span for span in tracer.spans if span["name"] == "root"]
    children = [span for span in tracer.spans if span["name"] == "child"]
    assert 0 < len(roots) < 20, "a 0.5 sample keeps some, drops some"
    # an unsampled root suppresses its whole trace: children match roots
    assert len(children) == len(roots)
    # same seed, same decisions
    obs_trace.reset()
    obs_trace.configure(enabled=True, sample=0.5, seed=42)
    for _ in range(20):
        with obs_trace.span("root"):
            pass
    again = [span for span in obs_trace.get_tracer().spans]
    assert len(again) == len(roots)


def test_max_spans_bounds_the_buffer_and_counts_drops():
    obs_trace.configure(enabled=True, max_spans=3)
    for index in range(5):
        with obs_trace.span(f"span{index}"):
            pass
    tracer = obs_trace.get_tracer()
    assert len(tracer.spans) == 3
    assert tracer.dropped == 2
    assert tracer.stats()["finished"] == 5


def test_adopt_merges_worker_span_dicts():
    obs_trace.configure(enabled=True)
    foreign = [
        {"trace_id": "t", "span_id": "w.1", "parent_id": None,
         "name": "worker.exec", "start": 0.0, "duration": 0.1,
         "pid": 99, "tags": {}, "events": []},
    ]
    tracer = obs_trace.get_tracer()
    assert tracer.adopt(foreign) == 1
    assert tracer.stats()["adopted"] == 1
    assert tracer.trace("t")[0]["name"] == "worker.exec"


def test_span_tree_nests_by_parentage():
    obs_trace.configure(enabled=True)
    with obs_trace.span("a"):
        with obs_trace.span("b"):
            with obs_trace.span("c"):
                pass
        with obs_trace.span("d"):
            pass
    [root] = obs_trace.span_tree(obs_trace.get_tracer().spans)
    assert root["span"]["name"] == "a"
    names = sorted(child["span"]["name"] for child in root["children"])
    assert names == ["b", "d"]


def test_env_propagation_enables_children():
    obs_trace.configure(enabled=True)
    with obs_trace.span("parent"):
        environ = obs_trace.inject_env({})
    assert environ[obs_trace.TRACE_ENV] == "1"
    context = obs_trace.extract_env(environ)
    assert context is not None
    obs_trace.reset()
    obs_trace.configure_from_env(environ)
    assert obs_trace.TRACING is True


# ---------------------------------------------------------------------------
# metrics registry and exporters
# ---------------------------------------------------------------------------

def test_registry_instruments_and_snapshot():
    registry = obs_metrics.MetricsRegistry()
    requests = registry.counter("repro_test_requests_total", help="requests")
    requests.inc()
    requests.inc(2)
    registry.counter(
        "repro_test_by_outcome_total", labels={"outcome": "ok"}
    ).inc(5)
    gauge = registry.gauge("repro_test_inflight")
    gauge.set(3)
    gauge.dec()
    histogram = registry.histogram("repro_test_latency_seconds")
    histogram.observe(0.002)
    histogram.observe(0.2)
    snapshot = registry.snapshot()
    assert registry.get_value("repro_test_requests_total") == 3.0
    assert registry.get_value(
        "repro_test_by_outcome_total", labels={"outcome": "ok"}
    ) == 5.0
    assert registry.get_value("repro_test_inflight") == 2.0
    names = [family["name"] for family in snapshot["families"]]
    assert names == sorted(names), "snapshot families are sorted"
    assert "repro_test_latency_seconds" in names


def test_same_name_same_labels_is_the_same_instrument():
    registry = obs_metrics.MetricsRegistry()
    first = registry.counter("repro_x_total", labels={"a": "1", "b": "2"})
    second = registry.counter("repro_x_total", labels={"b": "2", "a": "1"})
    assert first is second
    with pytest.raises(ValueError):
        registry.gauge("repro_x_total", labels={"a": "1", "b": "2"})
    with pytest.raises(ValueError):
        first.inc(-1)


def test_histogram_buckets_are_cumulative_and_log_scale():
    registry = obs_metrics.MetricsRegistry()
    histogram = registry.histogram("repro_h_seconds")
    for value in (0.00005, 0.002, 0.002, 50.0, 1000.0):
        histogram.observe(value)
    pairs = histogram.cumulative()
    assert pairs[-1] == (float("inf"), 5)
    as_dict = dict(pairs)
    assert as_dict[obs_metrics.LATENCY_BUCKETS[0]] == 1  # 0.00005 <= 0.0001
    assert as_dict[100.0] == 4  # everything but the 1000s outlier
    counts = [count for _, count in pairs]
    assert counts == sorted(counts), "cumulative counts are monotone"


def test_prometheus_exposition_round_trips_through_the_parser():
    registry = obs_metrics.MetricsRegistry()
    registry.counter(
        "repro_q_total", labels={"outcome": "ok"}, help='queries "ok"'
    ).inc(7)
    registry.gauge("repro_g").set(1.5)
    registry.histogram("repro_h_seconds").observe(0.01)
    text = obs_export.to_prometheus(registry.snapshot())
    parsed = obs_export.parse_prometheus(text)
    assert parsed["repro_q_total"]["type"] == "counter"
    [(labels, value)] = parsed["repro_q_total"]["samples"]
    assert labels == {"outcome": "ok"} and value == 7.0
    assert parsed["repro_g"]["samples"] == [({}, 1.5)]
    histogram = parsed["repro_h_seconds"]
    assert histogram["type"] == "histogram"
    le_values = [labels["le"] for labels, _ in histogram["samples"] if "le" in labels]
    assert le_values[-1] == "+Inf"
    with pytest.raises(ValueError):
        obs_export.parse_prometheus("this is not prometheus text\n")


def test_flatten_stats_and_format_table():
    rows = obs_export.flatten_stats({"b": {"y": 2, "x": 1}, "a": 0})
    assert rows == [("a", 0), ("b.x", 1), ("b.y", 2)]
    table = obs_export.format_table(rows)
    lines = table.splitlines()
    assert lines[0].startswith("a") and lines[0].endswith("0")
    assert all(line.index(str(value)) > 0 for line, (_, value) in zip(lines, rows))


def test_chrome_trace_exports_complete_and_instant_events():
    obs_trace.configure(enabled=True)
    with obs_trace.span("parent", stage="verdict") as parent:
        parent.add_event("fault.injected", site="exec.crash")
        with obs_trace.span("child"):
            pass
    payload = obs_export.chrome_trace(obs_trace.get_tracer().spans)
    events = payload["traceEvents"]
    complete = [event for event in events if event["ph"] == "X"]
    instants = [event for event in events if event["ph"] == "i"]
    assert {event["name"] for event in complete} == {"parent", "child"}
    [instant] = instants
    assert instant["name"] == "parent:fault.injected"
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
    by_name = {event["name"]: event for event in complete}
    assert by_name["parent"]["args"]["tag.stage"] == "verdict"
    json.dumps(payload)  # the whole document must be JSON-serializable


def test_collectors_merge_into_a_registry_snapshot():
    service = VerificationService()
    try:
        digest = service.register(FILTER_SOURCE)
        service.verify_blocking(digest, "endochrony")
        snapshot = service.metrics.snapshot()
        names = {family["name"] for family in snapshot["families"]}
        assert "repro_service_queries_total" in names
        assert "repro_artifact_stage_total" in names
        assert "repro_trace_spans_total" in names
        queries = {
            sample["labels"]["outcome"]: sample["value"]
            for family in snapshot["families"]
            if family["name"] == "repro_service_queries_total"
            for sample in family["samples"]
        }
        assert queries["all"] == 1.0 and queries["computed"] == 1.0
        obs_export.parse_prometheus(obs_export.to_prometheus(snapshot))
    finally:
        service.close()


def test_bdd_collector_reports_kernel_counters():
    from repro.bdd.bdd import BDDManager

    manager = BDDManager(["a", "b"])
    left, right = manager.var("a"), manager.var("b")
    manager.apply("and", left, right)
    manager.apply("and", left, right)
    registry = obs_metrics.MetricsRegistry()
    registry.register_collector(obs_collect.bdd_collector(manager))
    assert registry.get_value(
        "repro_bdd_apply_calls_total", labels={"backend": "reference"}
    ) == 2.0
    assert registry.get_value(
        "repro_bdd_peak_nodes", labels={"backend": "reference"}
    ) >= 3.0
    ratio = registry.get_value(
        "repro_bdd_apply_cache_hit_ratio", labels={"backend": "reference"}
    )
    assert 0.0 <= ratio <= 1.0


# ---------------------------------------------------------------------------
# profiling hooks
# ---------------------------------------------------------------------------

def test_slow_query_log_thresholds_and_bounds():
    log = obs_profile.SlowQueryLog(threshold=0.01, maxlen=2)
    assert not log.observe(0.001, "d1", "endochrony", "auto")
    assert log.observe(0.05, "d2", "endochrony", "auto", trace_id="t1")
    assert log.observe(0.07, "d3", "endochrony", "auto")
    assert log.observe(0.09, "d4", "endochrony", "auto")
    entries = log.entries()
    assert len(entries) == 2, "maxlen bounds the log"
    assert entries[0]["digest"] == "d3", "oldest entries fall off"
    stats = log.stats()
    assert stats["logged"] == 3 and stats["threshold"] == 0.01
    assert stats["observed"] == 4
    disabled = obs_profile.SlowQueryLog(threshold=0.0)
    assert not disabled.observe(999.0, "d", "p", "m")
    assert disabled.enabled is False


def test_traced_verify_attaches_stage_self_times_and_bdd_tags():
    obs_trace.configure(enabled=True)
    from repro.api.session import Design

    design = Design.from_source(FILTER_SOURCE)
    verdict = design.verify("endochrony")
    stages = verdict.cost.stages
    assert stages is not None and "verify" in stages
    assert all(value >= 0 for value in stages.values())
    payload = verdict.to_dict()
    assert payload["cost"]["stages"] == stages
    table = spans_by_name(obs_trace.get_tracer().spans)
    assert "artifact.verdict" in table
    assert table["artifact.verdict"][0]["tags"]["stage"] == "verdict"
    assert "self_seconds" in table["artifact.verdict"][0]["tags"]


def test_untraced_verify_has_no_stages_key():
    from repro.api.session import Design

    verdict = Design.from_source(FILTER_SOURCE).verify("endochrony")
    assert verdict.cost.stages is None
    assert "stages" not in verdict.to_dict()["cost"]


# ---------------------------------------------------------------------------
# the acceptance scenario: one query, one trace, the whole stack
# ---------------------------------------------------------------------------

def test_one_client_query_yields_one_full_stack_trace(tmp_path):
    obs_trace.configure(enabled=True)
    socket_path = tmp_path / "obs.sock"
    service = VerificationService(store=ArtifactStore(tmp_path / "store"))
    server = ServiceServer(service, socket_path)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever(ready)), daemon=True
    )
    thread.start()
    assert ready.wait(10)
    client = ServiceClient(socket_path)
    try:
        digest = client.register(FILTER_SOURCE)
        verdict = client.verify(digest=digest, prop="endochrony")
        assert verdict["holds"] is True
    finally:
        try:
            client.shutdown()
        except (ServiceError, OSError):
            pass
        thread.join(10)

    tracer = obs_trace.get_tracer()
    verify_requests = [
        span for span in tracer.spans
        if span["name"] == "client.request" and span["tags"].get("op") == "verify"
    ]
    assert len(verify_requests) == 1
    trace_id = verify_requests[0]["trace_id"]
    names = {span["name"] for span in tracer.trace(trace_id)}
    # transport, scheduler, artifact stages, store accesses, backend exec —
    # all under the ONE trace the client started
    assert {
        "client.request", "server.request", "service.verify",
        "service.compute", "backend.exec", "artifact.verdict",
        "artifact.analysis", "store.get", "store.put",
    } <= names
    [tree] = obs_trace.span_tree(tracer.trace(trace_id))
    assert tree["span"]["name"] == "client.request"
    # the whole trace exports to Chrome trace-event JSON without loss
    payload = obs_export.chrome_trace(tracer.trace(trace_id))
    assert len([e for e in payload["traceEvents"] if e["ph"] == "X"]) == len(
        tracer.trace(trace_id)
    )


def test_coalesced_riders_share_the_computation_but_keep_their_spans():
    obs_trace.configure(enabled=True)
    service = VerificationService(backend=InlineBackend(workers=1))
    try:
        digest = service.register(FILTER_SOURCE)

        async def fan_out():
            queries = [
                asyncio.ensure_future(service.verify(digest, "endochrony"))
                for _ in range(8)
            ]
            return await asyncio.gather(*queries)

        verdicts = asyncio.run(fan_out())
        assert all(verdict["holds"] for verdict in verdicts)
        assert service.computations == 1 and service.coalesced == 7
    finally:
        service.close()
    tracer = obs_trace.get_tracer()
    table = spans_by_name(tracer.spans)
    assert len(table["service.verify"]) == 8
    riders = [
        span for span in table["service.verify"]
        if span["tags"].get("outcome") == "coalesced"
    ]
    assert len(riders) == 7
    assert all(span["tags"]["coalesced"] is True for span in riders)
    assert len(table["service.compute"]) == 1, "riders share one computation"


def test_process_pool_worker_spans_are_shipped_and_adopted():
    obs_trace.configure(enabled=True)
    service = VerificationService(backend=ProcessPoolBackend(workers=1))
    try:
        digest = service.register(FILTER_SOURCE)
        verdict = service.verify_blocking(digest, "endochrony")
        assert verdict["holds"] is True
        from repro.service.scheduler import TRACE_SHIP_KEY

        assert TRACE_SHIP_KEY not in verdict
    finally:
        service.close()
    tracer = obs_trace.get_tracer()
    assert tracer.stats()["adopted"] > 0
    table = spans_by_name(tracer.spans)
    [worker_exec] = table["worker.exec"]
    [dispatch] = table["backend.dispatch"]
    assert worker_exec["pid"] != dispatch["pid"], "worker spans crossed processes"
    assert worker_exec["trace_id"] == dispatch["trace_id"]
    assert worker_exec["parent_id"] == dispatch["span_id"]
    # worker-side artifact stages joined the same trace
    assert any(
        span["name"] == "artifact.verdict" and span["pid"] == worker_exec["pid"]
        for span in tracer.trace(worker_exec["trace_id"])
    )
