"""The on-the-fly engine: lazy/eager equivalence, products, batch layer.

The load-bearing guarantee of :mod:`repro.mc.onthefly` is that laziness is
*only* an evaluation strategy: the lazy product of component abstractions,
fully materialized, is the very same reaction LTS the eager engine builds
from the composed process, and every property verdict (with a valid witness
on failure) agrees between the two.  The property-based tests below pin this
on randomly drawn compositions from the generator families and the paper's
component library.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Design
from repro.lang.builder import ProcessBuilder, signal
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process
from repro.library.generators import (
    chain_of_buffers,
    independent_components,
    pipeline_network,
    star_network,
)
from repro.library.producer_consumer import normalized_suite
from repro.mc import (
    LazyReactionLTS,
    OnTheFlyChecker,
    ProductLTS,
    SymbolicProductChecker,
    build_lts,
)
from repro.properties.nonblocking import verify_non_blocking
from repro.properties.weak_endochrony import check_weak_endochrony

MAX_STATES = 2048


def _transition_set(lts):
    return {(t.source, t.reaction, t.target) for t in lts.transitions}

_GENERATORS = {
    "pipeline": pipeline_network,
    "star": star_network,
    "buffers": chain_of_buffers,
    "independent": independent_components,
}


def _arbiter_for(composition):
    """A merge arbiter over the composition's first output (breaks Definition 2)."""
    tail = sorted(composition.outputs)[0]
    builder = ProcessBuilder("arbiter", inputs=[tail, "fresh_w"], outputs=["arb_out"])
    builder.define("arb_out", signal(tail).default(signal("fresh_w")))
    return normalize(builder.build())


@st.composite
def random_composition(draw):
    """A random small composition: a generator family, optionally + arbiter."""
    family = draw(st.sampled_from(sorted(_GENERATORS)))
    size = draw(st.integers(min_value=1, max_value=3))
    components, composition = _GENERATORS[family](size)
    components = list(components)
    if draw(st.booleans()):
        arbiter = _arbiter_for(composition)
        components.append(arbiter)
        composition = composition.compose(arbiter)
    assume(len(components) >= 2)
    return components, composition


@st.composite
def library_pair(draw):
    """A random pair of library components composed by name-matching."""
    suite = normalized_suite()
    pool = {
        "producer": suite["producer"],
        "consumer": suite["consumer"],
        "filter": normalize(filter_process()),
        "buffer": normalize(buffer_process()),
    }
    names = draw(
        st.lists(st.sampled_from(sorted(pool)), min_size=2, max_size=2, unique=True)
    )
    return [pool[name] for name in names]


class TestLazyEagerEquivalence:
    @given(random_composition())
    @settings(max_examples=25, deadline=None)
    def test_materialized_product_equals_eager_lts(self, drawn):
        components, composition = drawn
        eager = build_lts(composition, max_states=MAX_STATES)
        engine = OnTheFlyChecker(ProductLTS(components), max_states=MAX_STATES)
        materialized = engine.materialize()
        assert materialized.initial == eager.initial
        assert set(materialized.states) == set(eager.states)
        assert _transition_set(materialized) == _transition_set(eager)
        assert materialized.truncated == eager.truncated

    @given(random_composition())
    @settings(max_examples=25, deadline=None)
    def test_weak_endochrony_verdicts_agree(self, drawn):
        components, composition = drawn
        eager_report = check_weak_endochrony(composition, max_states=MAX_STATES)
        engine = OnTheFlyChecker(ProductLTS(components), max_states=MAX_STATES)
        lazy_report = check_weak_endochrony(composition, checker=engine)
        assert lazy_report.holds() == eager_report.holds()
        # the lazy engine never expands more than the eager engine explored
        assert lazy_report.states_explored <= eager_report.states_explored
        if not lazy_report.holds():
            # the witness is valid: the axiom the lazy engine refuted is an
            # axiom the eager engine refutes as well, with a concrete reaction
            lazy_failure = lazy_report.failures()[0]
            eager_failed_names = {failure.name for failure in eager_report.failures()}
            assert lazy_failure.name in eager_failed_names
            assert lazy_failure.counterexample

    @given(random_composition())
    @settings(max_examples=15, deadline=None)
    def test_non_blocking_verdicts_agree(self, drawn):
        components, composition = drawn
        eager = verify_non_blocking(composition, max_states=MAX_STATES)
        engine = OnTheFlyChecker(ProductLTS(components), max_states=MAX_STATES)
        lazy = verify_non_blocking(composition, checker=engine)
        assert lazy.holds == eager.holds

    @given(library_pair())
    @settings(max_examples=10, deadline=None)
    def test_library_pairs_agree(self, components):
        left, right = components
        composition = left.compose(right)
        try:
            product = ProductLTS(components)
        except ValueError:
            assume(False)  # clashing register names: no product is defined
        eager = build_lts(composition, max_states=MAX_STATES)
        materialized = OnTheFlyChecker(product, max_states=MAX_STATES).materialize()
        assert set(materialized.states) == set(eager.states)
        assert _transition_set(materialized) == _transition_set(eager)

    @pytest.mark.parametrize("family,size", [("pipeline", 3), ("buffers", 3), ("star", 2)])
    def test_symbolic_product_matches_explicit_reachability(self, family, size):
        components, composition = _GENERATORS[family](size)
        eager = build_lts(composition, max_states=MAX_STATES)
        checker = SymbolicProductChecker([build_lts(c) for c in components])
        assert checker.reachable_count() == eager.state_count()
        assert checker.is_non_blocking().holds


class TestOnTheFlyChecker:
    def test_single_component_lazy_matches_eager(self):
        process = normalized_suite()["producer"]
        eager = build_lts(process)
        materialized = OnTheFlyChecker(LazyReactionLTS(process)).materialize()
        assert materialized.states == eager.states
        assert materialized.transitions == eager.transitions  # single component: even the order agrees

    def test_truncation_respects_state_bound(self):
        components, _composition = chain_of_buffers(4)  # 108 reachable states
        engine = OnTheFlyChecker(ProductLTS(components), max_states=10)
        engine.explore_all()
        assert engine.truncated
        assert engine.states_discovered == 10

    def test_early_termination_expands_less_than_full_exploration(self):
        components, composition = chain_of_buffers(3)
        arbiter = _arbiter_for(composition)
        components = list(components) + [arbiter]
        engine = OnTheFlyChecker(ProductLTS(components), max_states=MAX_STATES)
        report = check_weak_endochrony(composition.compose(arbiter), checker=engine)
        assert not report.holds()
        assert not report.complete
        full = build_lts(composition.compose(arbiter), max_states=MAX_STATES)
        assert engine.states_expanded < full.state_count()

    def test_truncated_all_holds_report_is_marked_incomplete(self):
        components, composition = chain_of_buffers(4)  # 108 reachable states
        engine = OnTheFlyChecker(ProductLTS(components), max_states=10)
        report = check_weak_endochrony(composition, checker=engine)
        assert engine.truncated
        assert report.holds()  # all axioms hold on the states that were seen...
        assert not report.complete  # ...but a bound-cut run is not a proof

    def test_truncated_non_blocking_verdict_carries_bound_diagnostic(self):
        components, composition = chain_of_buffers(4)
        engine = OnTheFlyChecker(ProductLTS(components), max_states=10)
        verdict = verify_non_blocking(composition, checker=engine)
        assert verdict.holds
        assert any("state bound" in d.name for d in verdict.diagnostics)

    def test_symbolic_product_rejects_multiply_defined_components(self):
        producer = normalized_suite()["producer"]
        buffer = normalize(buffer_process())  # both define x
        with pytest.raises(ValueError):
            SymbolicProductChecker(
                [build_lts(producer), build_lts(buffer)],
                components=[producer, buffer],
            )

    def test_statistics_keys(self):
        components, _composition = pipeline_network(2)
        engine = OnTheFlyChecker(ProductLTS(components), max_states=64)
        engine.explore_all()
        statistics = engine.statistics()
        assert statistics["states_expanded"] == engine.states_expanded
        assert statistics["state_bound"] == 64
        assert statistics["truncated"] == 0

    def test_product_rejects_clashing_registers(self):
        process = normalize(buffer_process())
        with pytest.raises(ValueError):
            ProductLTS([process, process])

    def test_product_rejects_multiply_defined_signals(self):
        # producer and buffer both define x: the canonical-value abstraction
        # cannot join two defining equations, so no product is offered
        producer = normalized_suite()["producer"]
        buffer = normalize(buffer_process())
        with pytest.raises(ValueError):
            ProductLTS([producer, buffer])

    def test_engine_falls_back_to_composition_on_unproductable_components(self):
        producer = normalized_suite()["producer"]
        buffer = normalize(buffer_process())
        design = Design(name="pb", components=[producer, buffer])
        verdict = design.verify("non-blocking", method="explicit")
        eager = verify_non_blocking(producer.compose(buffer))
        assert verdict.holds == eager.holds

    def test_context_memoizes_engines(self):
        components, composition = pipeline_network(2)
        design = Design(name=composition.name, components=list(components))
        first = design.context.onthefly(list(components), 128)
        second = design.context.onthefly(list(components), 128)
        assert first is second
        assert design.context.onthefly(list(components), 256) is not first


class TestBatchLayer:
    @pytest.fixture()
    def design(self):
        components, composition = chain_of_buffers(2)
        return Design(name=composition.name, components=list(components))

    def test_verify_many_spec_forms(self, design):
        verdicts = design.verify_many(
            [
                "non-blocking",
                ("weak-endochrony", "explicit"),
                ("non-blocking", "explicit", {"max_states": 128}),
                {"prop": "weakly-hierarchic", "method": "static"},
            ]
        )
        assert [v.prop for v in verdicts] == [
            "non-blocking",
            "weak-endochrony",
            "non-blocking",
            "weakly-hierarchic",
        ]
        assert all(isinstance(bool(v), bool) for v in verdicts)

    def test_verify_many_rejects_bad_spec(self, design):
        with pytest.raises(ValueError):
            design.verify_many([("too", "many", "items", "here")])

    def test_verify_many_parallel_matches_sequential(self, design):
        specs = [("non-blocking", "explicit"), ("weak-endochrony", "explicit")]
        sequential = design.verify_many(specs)
        parallel = design.verify_many(specs, parallel=2)
        assert [bool(v) for v in sequential] == [bool(v) for v in parallel]
        # cross-process verdicts are sanitized: no report payload
        assert all(v.report is None for v in parallel)
        assert all(v.report is not None for v in sequential)

    def test_map_components_sequential_and_parallel(self, design):
        sequential = design.map_components("endochrony")
        assert len(sequential) == 2
        parallel = design.map_components("endochrony", parallel=2)
        assert [bool(v) for v in sequential] == [bool(v) for v in parallel]

    def test_component_design_shares_context(self, design):
        sub = design.component_design(0)
        assert sub.context is design.context
        assert design.component_design(0) is sub
