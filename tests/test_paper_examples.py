"""End-to-end reproduction of the paper's worked examples (E1-E4, E10).

Each test states which example of the paper it reproduces; EXPERIMENTS.md
indexes them.
"""

import pytest

from repro.mocc.behaviors import clock_equivalent, flow_equivalent
from repro.properties.compilable import ProcessAnalysis
from repro.properties.endochrony import check_endochrony_on_traces, is_endochronous
from repro.semantics.denotational import behavior_from_run, run_to_completion
from repro.semantics.environment import ReactiveEnvironment
from repro.semantics.interpreter import ABSENT, SignalInterpreter


class TestSection1Filter:
    """E1: x = filter(y) emits x every time the value of y changes."""

    def test_filter_trace(self, filter_normalized):
        interpreter = SignalInterpreter(filter_normalized)
        inputs = [True, False, False, True]
        xs = []
        for value in inputs:
            result = interpreter.step({"y": value})
            xs.append(result.value("x") if result.present("x") else None)
        # x is present at t2 and t4 with value true (paper writes 1)
        assert xs == [None, True, None, True]

    def test_filter_is_endochronous_statically(self, filter_normalized):
        assert is_endochronous(filter_normalized)

    def test_filter_is_endochronous_on_traces(self, filter_normalized):
        """Definition 1 checked on flow-equivalent inputs, as in Section 4's example."""
        report = check_endochrony_on_traces(
            filter_normalized, {"y": [True, False, False, True]}, max_instants=6
        )
        assert report.holds


class TestSection1Merge:
    """E2: the merge is endochronous, but its composition with filter is not."""

    def test_merge_is_endochronous(self, filter_merge):
        assert is_endochronous(filter_merge["merge"])

    def test_merge_trace(self, filter_merge):
        """d follows c's value: y when c is true, z when c is false (paper's Section 1 trace)."""
        interpreter = SignalInterpreter(filter_merge["merge"])
        steps = [
            {"c": False, "z": True, "x": ABSENT},
            {"c": True, "x": True, "z": ABSENT},
            {"c": True, "x": True, "z": ABSENT},
            {"c": False, "z": False, "x": ABSENT},
        ]
        outputs = [interpreter.step(step).value("d") for step in steps]
        assert outputs == [True, True, True, False]

    def test_composition_is_not_endochronous(self, filter_merge):
        analysis = ProcessAnalysis(filter_merge["composition"])
        assert analysis.is_compilable()
        assert not analysis.is_hierarchic()
        assert not is_endochronous(filter_merge["composition"], analysis)

    def test_composition_roots_are_the_two_pacing_inputs(self, filter_merge):
        analysis = ProcessAnalysis(filter_merge["composition"])
        root_signals = {name for signals in analysis.hierarchy.root_signals() for name in signals}
        assert "y" in root_signals
        assert "c" in root_signals


class TestSection2FilterSemantics:
    """E4: the six-instant denotational trace of Section 2.2."""

    def test_six_instant_trace(self, filter_normalized):
        environment = ReactiveEnvironment(
            ["y"], [{"y": v} for v in [True, False, False, True, True, False]]
        )
        results = run_to_completion(filter_normalized, environment)
        behavior = behavior_from_run(results, ["x", "y"])
        assert behavior["y"].values == (True, False, False, True, True, False)
        # x is present at tags 1, 3, 5 (the paper's t2, t4, t6), always true
        assert behavior["x"].tags == (1, 3, 5)
        assert behavior["x"].values == (True, True, True)

    def test_flow_equivalent_inputs_give_clock_equivalent_behaviors(self, filter_normalized):
        """The endochrony argument of Section 3.7 / Definition 1, on two different timings."""
        dense = ReactiveEnvironment(["y"], [{"y": v} for v in [True, False, False, True]])
        sparse = ReactiveEnvironment(
            ["y"],
            [
                {"y": True},
                {},
                {"y": False},
                {},
                {"y": False},
                {"y": True},
            ],
        )
        dense_behavior = behavior_from_run(
            run_to_completion(filter_normalized, dense), ["x", "y"], drop_silent=True
        )
        sparse_behavior = behavior_from_run(
            run_to_completion(filter_normalized, sparse), ["x", "y"], drop_silent=True
        )
        assert flow_equivalent(
            dense_behavior.restrict(["y"]), sparse_behavior.restrict(["y"])
        )
        assert clock_equivalent(dense_behavior, sparse_behavior)


class TestSection4Hierarchies:
    """E10: filter and buffer hierarchies are single-rooted (endochronous)."""

    def test_filter_single_root(self, filter_analysis):
        assert filter_analysis.hierarchy.root_count() == 1

    def test_buffer_single_root(self, buffer_analysis):
        assert buffer_analysis.hierarchy.root_count() == 1

    def test_buffer_is_endochronous(self, buffer_normalized, buffer_analysis):
        assert is_endochronous(buffer_normalized, buffer_analysis)

    def test_buffer_alternates_read_and_emit(self, buffer_normalized):
        """Section 3.7: the buffer always alternates receiving y and sending x."""
        interpreter = SignalInterpreter(buffer_normalized)
        values = [1, 2, 3]
        observed = []
        iterator = iter(values)
        for step in range(6):
            if step % 2 == 0:
                result = interpreter.step({"y": next(iterator)})
                assert not result.present("x")
            else:
                result = interpreter.step({"y": ABSENT}, assume={"buffer_t": True})
                assert result.present("x")
                observed.append(result.value("x"))
        assert observed == values
