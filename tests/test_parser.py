"""Tests for the textual Signal parser and the pretty printer round-trip."""

import pytest

from repro.lang.ast import ClockConstraint, Definition, Instantiation, Restriction
from repro.lang.normalize import normalize
from repro.lang.parser import ParseError, parse_process, parse_program
from repro.lang.printer import format_process
from repro.library.basic import filter_process
from repro.properties.compilable import ProcessAnalysis
from repro.semantics.interpreter import SignalInterpreter

FILTER_SOURCE = """
process filter (y) returns (x) {
  local z;
  x := true when (y /= z);
  z := y pre true;
}
"""

BUFFER_SOURCE = """
# the one-place buffer of Section 3
process buffer (y) returns (x) {
  local s, t, r, m;
  s := t pre true;
  t := not s;
  ^y = [not t];
  m := r pre false;
  r := y default m;
  ^r = ^t;
  x := r when t;
}
"""

PRODUCER_CONSUMER_SOURCE = """
process producer (a) returns (u, x) {
  ^u = [a];
  u := 1 + (u pre 0);
  ^x = [not a];
  x := 1 + (x pre 0);
}

process consumer (b, x) returns (v) {
  ^v = ^b;
  ^x = [b];
  v := (v pre 0) + (x default 1);
}

process main (a, b) returns (u, v) {
  local x;
  (u, x) := producer(a);
  (v) := consumer(b, x);
}
"""


class TestParser:
    def test_parse_filter(self):
        definition = parse_process(FILTER_SOURCE)
        assert definition.name == "filter"
        assert definition.inputs == ("y",)
        assert definition.outputs == ("x",)
        assert "z" in definition.locals

    def test_parsed_filter_behaves_like_builder_filter(self):
        parsed = normalize(parse_process(FILTER_SOURCE))
        built = normalize(filter_process())
        parsed_interpreter = SignalInterpreter(parsed)
        built_interpreter = SignalInterpreter(built)
        stream = [True, False, False, True, True, False]
        for value in stream:
            parsed_result = parsed_interpreter.step({"y": value})
            built_result = built_interpreter.step({"y": value})
            assert parsed_result.present("x") == built_result.present("x")

    def test_parse_buffer_and_analyze(self):
        definition = parse_process(BUFFER_SOURCE)
        analysis = ProcessAnalysis(normalize(definition))
        assert analysis.is_compilable()
        assert analysis.is_hierarchic()

    def test_parse_program_with_instantiations(self):
        program = parse_program(PRODUCER_CONSUMER_SOURCE)
        assert set(program) == {"producer", "consumer", "main"}
        main = program["main"]
        instantiations = [
            statement
            for statement in main.body.body.statements
            for statement in [statement]
            if isinstance(statement, Instantiation)
        ] if isinstance(main.body, Restriction) else []
        assert len(instantiations) == 2
        normalized = normalize(main, program)
        assert set(normalized.inputs) == {"a", "b"}
        assert set(normalized.outputs) == {"u", "v"}

    def test_clock_constraint_parsing(self):
        definition = parse_process(
            "process sync (a, b) returns (c) { ^a = ^b; c := a and b; }"
        )
        constraints = [
            statement
            for statement in (
                definition.body.statements
                if hasattr(definition.body, "statements")
                else [definition.body]
            )
            if isinstance(statement, ClockConstraint)
        ]
        assert len(constraints) == 1

    def test_comments_are_ignored(self):
        definition = parse_process(
            "process p (a) returns (x) {\n  # a comment\n  x := a; % another\n}"
        )
        assert isinstance(definition.body, Definition)

    def test_operator_precedence(self):
        definition = parse_process(
            "process p (a, b, c) returns (x) { x := a when b default c; }"
        )
        normalized = normalize(definition)
        # default binds weaker than when: (a when b) default c
        from repro.lang.normalize import MergeEquation

        merges = [eq for eq in normalized.equations if isinstance(eq, MergeEquation)]
        assert len(merges) == 1
        assert merges[0].target == "x"

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_process("process broken (a) returns (x) {\n  x ::= a;\n}")
        assert "line 2" in str(excinfo.value)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_process("process p (a) returns (x) { x := a ? 1; }")

    def test_multiple_processes_rejected_by_parse_process(self):
        with pytest.raises(ParseError):
            parse_process(PRODUCER_CONSUMER_SOURCE)


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("source", [FILTER_SOURCE, BUFFER_SOURCE])
    def test_print_then_reparse_preserves_structure(self, source):
        original = parse_process(source)
        printed = format_process(original)
        reparsed = parse_process(printed)
        assert reparsed.name == original.name
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert len(normalize(reparsed).equations) == len(normalize(original).equations)

    def test_print_builder_process(self):
        printed = format_process(filter_process())
        reparsed = parse_process(printed)
        assert reparsed.name == "filter"
