"""Additional unit coverage: primitive-equation printing, runtime helpers, clusters."""

import pytest

from repro.codegen.clusters import clock_clusters
from repro.codegen.runtime import EndOfStream, RecordingIO, StreamIO, simulate
from repro.lang.ast import ClockOf, ClockTrue, Const
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    SamplingEquation,
    normalize,
)
from repro.lang.printer import (
    format_clock,
    format_constant,
    format_normalized_process,
    format_primitive_equation,
)
from repro.library.basic import filter_process
from repro.properties.compilable import ProcessAnalysis


class TestPrimitivePrinting:
    def test_constants(self):
        assert format_constant(True) == "true"
        assert format_constant(False) == "false"
        assert format_constant(3) == "3"

    def test_function_equation(self):
        equation = FunctionEquation("x", "+", ("a", Const(1)))
        assert format_primitive_equation(equation) == "x := a + 1"
        assert format_primitive_equation(FunctionEquation("x", "id", ("a",))) == "x := a"
        assert format_primitive_equation(FunctionEquation("x", "not", ("a",))) == "x := not a"

    def test_delay_sampling_merge(self):
        assert format_primitive_equation(DelayEquation("x", "y", 0)) == "x := y pre 0"
        assert (
            format_primitive_equation(SamplingEquation("x", Const(True), "c"))
            == "x := true when c"
        )
        assert format_primitive_equation(MergeEquation("x", "y", "z")) == "x := y default z"

    def test_clock_equation(self):
        equation = ClockEquation(ClockOf("x"), ClockTrue("t"))
        assert format_primitive_equation(equation) == "^x = [t]"
        assert format_clock(ClockOf("x")) == "^x"

    def test_normalized_process_listing(self):
        listing = format_normalized_process(normalize(filter_process()))
        assert "process filter" in listing
        assert "inputs:  y" in listing
        assert "x := true when" in listing


class TestRuntimeHelpers:
    def test_stream_io_availability(self):
        io = StreamIO({"a": [1], "b": []})
        assert io.available("a") and not io.available("b")
        assert io.remaining("a") == 1
        assert not io.exhausted()
        io.read("a")
        assert io.exhausted()

    def test_write_accumulates_in_order(self):
        io = StreamIO()
        io.write("x", 1)
        io.write("x", 2)
        assert io.output("x") == [1, 2]
        assert io.output("unknown") == []

    def test_simulate_respects_max_steps(self):
        io = StreamIO({"a": [1] * 10})

        def step(stream):
            stream.read("a")
            return True

        assert simulate(step, io, max_steps=3) == 3

    def test_recording_io_separates_steps(self):
        io = RecordingIO({"a": [1, 2]})
        io.read("a")
        io.end_step()
        io.read("a")
        io.write("x", 5)
        io.end_step()
        assert len(io.step_log) == 2
        assert io.step_log[1] == {"a": 2, "-> x": 5}


class TestClusters:
    def test_filter_clusters(self):
        analysis = ProcessAnalysis(normalize(filter_process()))
        clusters = clock_clusters(analysis)
        assert clusters, "the filter has at least one clock cluster"
        root_cluster = clusters[0]
        assert root_cluster.depth == 0
        assert "y" in root_cluster.signals
        assert str(root_cluster)
