"""Tests of the formal properties: endochrony, weak endochrony, non-blocking, isochrony."""

import pytest

from repro.lang.builder import ProcessBuilder, const, signal, tick, when_false, when_true
from repro.lang.normalize import normalize
from repro.mc.transition import build_lts
from repro.properties.compilable import ProcessAnalysis, is_compilable
from repro.properties.endochrony import check_endochrony_on_traces, is_endochronous, is_hierarchic
from repro.properties.isochrony import check_isochrony
from repro.properties.nonblocking import is_non_blocking
from repro.properties.weak_endochrony import (
    check_weak_endochrony,
    model_check_weak_endochrony,
)


class TestCompilability:
    def test_paper_examples_are_compilable(self, filter_normalized, buffer_normalized, producer_consumer):
        assert is_compilable(filter_normalized)
        assert is_compilable(buffer_normalized)
        assert is_compilable(producer_consumer["producer"])
        assert is_compilable(producer_consumer["consumer"])
        assert is_compilable(producer_consumer["main"])

    def test_instantaneous_cycle_is_not_compilable(self):
        builder = ProcessBuilder("loop", inputs=[], outputs=["x", "y"])
        builder.define("x", signal("y") + 0)
        builder.define("y", signal("x") + 0)
        assert not is_compilable(normalize(builder.build()))

    def test_summary_keys(self, filter_analysis):
        summary = filter_analysis.summary()
        assert summary["compilable"] and summary["hierarchic"]
        assert summary["roots"] == 1


class TestEndochrony:
    def test_static_criterion_on_paper_processes(self, filter_merge, producer_consumer):
        assert is_endochronous(filter_merge["filter"])
        assert is_endochronous(filter_merge["merge"])
        assert is_endochronous(producer_consumer["producer"])
        assert is_endochronous(producer_consumer["consumer"])
        assert not is_endochronous(filter_merge["composition"])
        assert not is_endochronous(producer_consumer["main"])

    def test_hierarchic_predicate(self, buffer_normalized, filter_merge):
        assert is_hierarchic(buffer_normalized)
        assert not is_hierarchic(filter_merge["composition"])

    def test_trace_check_detects_non_endochrony(self, filter_merge):
        """E2: the filter|merge composition relates d's timing to no single input.

        The input flows are chosen so that the silent occurrence of ``y`` (no
        value change, hence no ``x``) can be interleaved freely with the
        ``c``/``z`` events: flow-equivalent inputs then admit behaviors that
        are not clock equivalent, which is exactly the failure of Definition 1.
        """
        report = check_endochrony_on_traces(
            filter_merge["composition"],
            {"y": [True], "c": [False], "z": [5]},
            max_instants=4,
        )
        assert not report.holds
        assert report.counterexample is not None


class TestWeakEndochrony:
    def test_filter_merge_composition_is_weakly_endochronous(self, filter_merge):
        report = check_weak_endochrony(filter_merge["composition"])
        assert report.holds(), str(report)

    def test_main_is_weakly_endochronous(self, producer_consumer):
        report = check_weak_endochrony(producer_consumer["main"])
        assert report.holds(), str(report)

    def test_endochronous_process_is_weakly_endochronous(self, filter_normalized):
        """Definition 1 implies Definition 2 (endochrony implies weak endochrony)."""
        report = check_weak_endochrony(filter_normalized)
        assert report.holds(), str(report)

    def test_invariant_formulation_agrees(self, producer_consumer, filter_merge):
        """Section 4.1's model-checking formulation agrees with the direct check."""
        for process in (producer_consumer["main"], filter_merge["composition"]):
            direct = check_weak_endochrony(process)
            invariants = model_check_weak_endochrony(process)
            assert direct.holds() == invariants.holds()

    def test_non_weakly_endochronous_process_is_detected(self):
        """Two alternatives competing for the same output break the diamond property."""
        builder = ProcessBuilder("race", inputs=["a", "b"], outputs=["x"])
        builder.define("x", signal("a").default(signal("b")))
        process = normalize(builder.build())
        report = check_weak_endochrony(process)
        assert not report.holds()

    def test_report_rendering(self, producer_consumer):
        text = str(check_weak_endochrony(producer_consumer["main"]))
        assert "weakly endochronous" in text


class TestNonBlocking:
    def test_paper_compositions_are_non_blocking(self, filter_merge, producer_consumer):
        assert is_non_blocking(filter_merge["composition"])
        assert is_non_blocking(producer_consumer["main"])

    def test_buffer_is_non_blocking(self, buffer_normalized):
        assert is_non_blocking(buffer_normalized)


class TestIsochrony:
    def test_filter_and_merge_are_isochronous(self, filter_merge):
        """E3: the untimed composition of filter and merge preserves the flows."""
        report = check_isochrony(
            filter_merge["filter"],
            filter_merge["merge"],
            {"y": [True, False], "c": [True, False], "z": [False]},
            max_instants=5,
        )
        assert report.holds, str(report)
        assert report.asynchronous_classes >= 1

    def test_producer_and_consumer_are_isochronous(self, producer_consumer):
        report = check_isochrony(
            producer_consumer["producer"],
            producer_consumer["consumer"],
            {"a": [True, False], "b": [False, True]},
            max_instants=5,
        )
        assert report.holds, str(report)

    def test_report_rendering(self, producer_consumer):
        report = check_isochrony(
            producer_consumer["producer"],
            producer_consumer["consumer"],
            {"a": [True], "b": [False]},
            max_instants=3,
        )
        assert "isochronous" in str(report)


class TestLTSConstruction:
    def test_buffer_lts_has_internal_activation(self, buffer_normalized):
        lts = build_lts(buffer_normalized)
        assert lts.state_count() >= 2
        non_silent = [t for t in lts.transitions if not t.reaction.is_silent()]
        assert non_silent

    def test_lts_truncation_flag(self, producer_consumer):
        lts = build_lts(producer_consumer["main"], max_states=1)
        assert lts.state_count() <= 1 or lts.truncated
