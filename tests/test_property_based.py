"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.bdd.bdd import BDDManager
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process
from repro.codegen.sequential import compile_process
from repro.codegen.runtime import StreamIO
from repro.mocc.behaviors import Behavior, clock_equivalent, flow_equivalent
from repro.mocc.reactions import Reaction, independent, merge_reactions
from repro.mocc.signals import SignalTrace
from repro.semantics.interpreter import SignalInterpreter

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

values = st.integers(min_value=-5, max_value=5)
tag_lists = st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=8, unique=True)


@st.composite
def signal_traces(draw):
    tags = sorted(draw(tag_lists))
    return SignalTrace({tag: draw(values) for tag in tags})


@st.composite
def behaviors(draw, names=("x", "y", "z")):
    return Behavior({name: draw(signal_traces()) for name in names})


@st.composite
def boolean_expressions(draw, depth=3):
    variables = ("a", "b", "c", "d")
    if depth == 0 or draw(st.booleans()):
        return ("var", draw(st.sampled_from(variables)))
    operator = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if operator == "not":
        return ("not", draw(boolean_expressions(depth=depth - 1)))
    return (operator, draw(boolean_expressions(depth=depth - 1)), draw(boolean_expressions(depth=depth - 1)))


def evaluate_expression(expression, assignment):
    kind = expression[0]
    if kind == "var":
        return assignment[expression[1]]
    if kind == "not":
        return not evaluate_expression(expression[1], assignment)
    left = evaluate_expression(expression[1], assignment)
    right = evaluate_expression(expression[2], assignment)
    if kind == "and":
        return left and right
    if kind == "or":
        return left or right
    return left != right


def build_bdd(expression, manager):
    kind = expression[0]
    if kind == "var":
        return manager.var(expression[1])
    if kind == "not":
        return ~build_bdd(expression[1], manager)
    left = build_bdd(expression[1], manager)
    right = build_bdd(expression[2], manager)
    if kind == "and":
        return left & right
    if kind == "or":
        return left | right
    return left ^ right


# ---------------------------------------------------------------------------
# BDD correctness
# ---------------------------------------------------------------------------


class TestBDDProperties:
    @given(boolean_expressions())
    @settings(max_examples=60, deadline=None)
    def test_bdd_agrees_with_direct_evaluation(self, expression):
        manager = BDDManager(["a", "b", "c", "d"])
        compiled = build_bdd(expression, manager)
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    for d in (False, True):
                        assignment = {"a": a, "b": b, "c": c, "d": d}
                        assert compiled.evaluate(assignment) == evaluate_expression(
                            expression, assignment
                        )

    @given(boolean_expressions(), boolean_expressions())
    @settings(max_examples=40, deadline=None)
    def test_de_morgan(self, left, right):
        manager = BDDManager(["a", "b", "c", "d"])
        first = build_bdd(left, manager)
        second = build_bdd(right, manager)
        assert (~(first & second)) == ((~first) | (~second))
        assert (~(first | second)) == ((~first) & (~second))

    @given(boolean_expressions())
    @settings(max_examples=40, deadline=None)
    def test_quantification_bounds(self, expression):
        manager = BDDManager(["a", "b", "c", "d"])
        compiled = build_bdd(expression, manager)
        assert manager.implies_check(compiled.forall(["a"]), compiled)
        assert manager.implies_check(compiled, compiled.exists(["a"]))


# ---------------------------------------------------------------------------
# model-of-computation equivalences
# ---------------------------------------------------------------------------


class TestEquivalenceProperties:
    @given(behaviors())
    @settings(max_examples=50, deadline=None)
    def test_clock_equivalence_is_reflexive_and_implies_flow_equivalence(self, behavior):
        assert clock_equivalent(behavior, behavior)
        assert flow_equivalent(behavior, behavior)

    @given(behaviors(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_uniform_stretching_preserves_clock_equivalence(self, behavior, factor):
        stretched = Behavior(
            {
                name: trace.relabel(lambda tag: tag * factor)
                for name, trace in behavior.items()
            }
        )
        assert clock_equivalent(behavior, stretched)

    @given(behaviors())
    @settings(max_examples=50, deadline=None)
    def test_per_signal_retiming_preserves_flow_equivalence(self, behavior):
        relaxed = Behavior(
            {name: SignalTrace.from_values(trace.values) for name, trace in behavior.items()}
        )
        assert flow_equivalent(behavior, relaxed)

    @given(behaviors())
    @settings(max_examples=50, deadline=None)
    def test_canonical_form_is_idempotent(self, behavior):
        canonical = behavior.canonical()
        assert canonical == canonical.canonical()


class TestReactionProperties:
    @given(
        st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), values, max_size=2),
        st.dictionaries(st.sampled_from(["e", "f", "g"]), values, max_size=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_of_independent_reactions_is_commutative(self, left_events, right_events):
        domain = ("a", "b", "c", "d", "e", "f", "g")
        left = Reaction(domain, left_events)
        right = Reaction(domain, right_events)
        assert independent(left, right)
        assert merge_reactions(left, right) == merge_reactions(right, left)
        merged = merge_reactions(left, right)
        assert merged.present_signals() == left.present_signals() | right.present_signals()


# ---------------------------------------------------------------------------
# generated code vs. interpreter oracle
# ---------------------------------------------------------------------------


class TestCodegenAgainstInterpreter:
    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_filter_generated_code_matches_interpreter(self, stream):
        process = normalize(filter_process())
        compiled = compile_process(process)
        interpreter = SignalInterpreter(process)
        io = StreamIO({"y": list(stream)})
        compiled.run(io)
        expected = []
        for value in stream:
            result = interpreter.step({"y": value})
            if result.present("x"):
                expected.append(result.value("x"))
        assert io.output("x") == expected

    @given(st.lists(st.integers(min_value=-10, max_value=10), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_buffer_is_a_fifo_of_depth_one(self, stream):
        """Whatever is written to the buffer comes out unchanged, in order."""
        compiled = compile_process(normalize(buffer_process()))
        io = StreamIO({"y": list(stream)})
        compiled.run(io)
        assert io.output("x") == list(stream)
