"""Printer ↔ parser round-trips over every process of :mod:`repro.library`.

Each library process is rendered with :func:`format_process` and re-read with
:func:`parse_process`; the re-parsed definition must analyze to the same
:meth:`~repro.properties.compilable.ProcessAnalysis.summary` as the original
(same interface, equation count, hierarchy roots and verdicts).
"""

from __future__ import annotations

import pytest

from repro import analyze, parse_process
from repro.lang.printer import format_process
from repro.library import basic, controllers, ltta, producer_consumer


def _registry():
    registry = {}
    registry.update(producer_consumer.registry())
    registry.update(ltta.registry())
    return registry


LIBRARY_PROCESSES = {
    "filter": basic.filter_process,
    "merge": basic.merge_process,
    "buffer": basic.buffer_process,
    "buffer2": basic.buffer2_process,
    "producer": producer_consumer.producer_process,
    "consumer": producer_consumer.consumer_process,
    "main": producer_consumer.main_process,
    "main2": producer_consumer.main2_process,
    "writer": ltta.writer_process,
    "bus": ltta.bus_process,
    "reader": ltta.reader_process,
    "ltta": ltta.ltta_process,
    "rendezvous_controller": controllers.rendezvous_controller_process,
}


@pytest.fixture(scope="module")
def registry():
    return _registry()


@pytest.mark.parametrize("name", sorted(LIBRARY_PROCESSES))
def test_format_then_parse_preserves_analysis(name, registry):
    original = LIBRARY_PROCESSES[name]()
    printed = format_process(original)
    reparsed = parse_process(printed)

    assert reparsed.name == original.name
    assert reparsed.inputs == original.inputs
    assert reparsed.outputs == original.outputs

    original_summary = analyze(original, registry).summary()
    reparsed_summary = analyze(reparsed, registry).summary()
    assert reparsed_summary == original_summary


@pytest.mark.parametrize("name", sorted(LIBRARY_PROCESSES))
def test_printing_is_stable_across_one_round_trip(name, registry):
    """format(parse(format(p))) == format(p): printing reaches a fixed point."""
    original = LIBRARY_PROCESSES[name]()
    printed = format_process(original)
    assert format_process(parse_process(printed)) == printed
