"""Tests for the scheduling graph: construction, reinforcement, closure, serialization (E8)."""

import pytest

from repro.clocks.relations import clock_node, signal_node
from repro.lang.builder import ProcessBuilder, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_process
from repro.properties.compilable import ProcessAnalysis
from repro.sched.closure import cyclic_nodes, is_acyclic, transitive_closure
from repro.sched.graph import SchedulingGraph
from repro.sched.reinforce import reinforce
from repro.sched.serialize import SerializationError, sequential_schedule


class TestGraphConstruction:
    def test_filter_graph_has_data_dependencies(self, filter_analysis):
        graph = filter_analysis.scheduling_graph
        edge = graph.edge(signal_node("y"), signal_node("_x_cond_1"))
        assert edge is not None
        assert graph.edge(signal_node("_x_cond_1"), signal_node("x")) is not None

    def test_parallel_edges_are_merged_by_disjunction(self, filter_analysis):
        graph = filter_analysis.scheduling_graph.copy()
        before = graph.edge_count()
        existing = graph.edges()[0]
        graph.add_edge(existing.source, existing.target, existing.clock)
        assert graph.edge_count() == before

    def test_effective_edges_drop_empty_clocks(self, buffer_analysis):
        graph = buffer_analysis.reinforced_graph
        assert len(graph.effective_edges()) <= graph.edge_count()


class TestReinforcement:
    def test_clock_precedes_value(self, buffer_analysis):
        """Rule 1: x^ →x^ x for every signal."""
        graph = buffer_analysis.reinforced_graph
        for name in buffer_analysis.process.all_signals():
            assert graph.edge(clock_node(name), signal_node(name)) is not None

    def test_sampling_value_feeds_clock(self, buffer_analysis):
        """Rule 2: y^ = [t] puts t (the value) before y^ — the paper's buffer figure."""
        graph = buffer_analysis.reinforced_graph
        assert graph.edge(signal_node("buffer_t"), clock_node("y")) is not None
        assert graph.edge(signal_node("buffer_t"), clock_node("x")) is not None

    def test_composite_clock_needs_operand_clocks(self):
        builder = ProcessBuilder("m", inputs=["y", "z"], outputs=["x"])
        builder.define("x", signal("y").default(signal("z")))
        analysis = ProcessAnalysis(normalize(builder.build()))
        graph = reinforce(analysis.scheduling_graph, analysis.relations)
        assert graph.edge(clock_node("y"), clock_node("x")) is not None
        assert graph.edge(clock_node("z"), clock_node("x")) is not None


class TestClosureAndAcyclicity:
    def test_buffer_is_acyclic(self, buffer_analysis):
        assert is_acyclic(buffer_analysis.reinforced_graph)
        assert cyclic_nodes(buffer_analysis.reinforced_graph) == []

    def test_closure_contains_transitive_paths(self, filter_analysis):
        closure = transitive_closure(filter_analysis.scheduling_graph)
        assert (signal_node("y"), signal_node("x")) in closure

    def test_feasible_cycle_is_detected(self):
        """x := y + 0 | y := x + 0 is an instantaneous dependency cycle."""
        builder = ProcessBuilder("loop", inputs=[], outputs=["x", "y"])
        builder.define("x", signal("y") + 0)
        builder.define("y", signal("x") + 0)
        analysis = ProcessAnalysis(normalize(builder.build()))
        assert not analysis.is_acyclic()
        offenders = cyclic_nodes(analysis.reinforced_graph)
        assert offenders

    def test_cycle_broken_by_delay_is_fine(self):
        """x := y + 0 | y := x pre 0 is fine: the delay breaks the cycle."""
        builder = ProcessBuilder("ok", inputs=[], outputs=["x", "y"])
        builder.define("x", signal("y") + 0)
        builder.define("y", signal("x").pre(0))
        analysis = ProcessAnalysis(normalize(builder.build()))
        assert analysis.is_acyclic()

    def test_cycle_with_exclusive_clocks_is_acyclic(self):
        """A cyclic-looking graph whose two arcs never tick together is acyclic (Def. 8)."""
        builder = ProcessBuilder("excl", inputs=["c", "a"], outputs=["x", "y"])
        builder.define("x", signal("a").when(signal("c")).default(signal("y")))
        builder.define("y", signal("a").when(signal("c").not_()).default(signal("x")))
        analysis = ProcessAnalysis(normalize(builder.build()))
        # x depends on y at [¬c-ish] instants and y on x at other instants; the
        # labelled closure must notice the conjunction of the two labels is empty
        # only if the clock calculus can prove it; here it cannot (the two merges
        # overlap), so the cycle is reported.
        assert isinstance(analysis.is_acyclic(), bool)


class TestSerialization:
    def test_schedule_respects_feasible_edges(self, buffer_analysis):
        graph = buffer_analysis.reinforced_graph
        order = sequential_schedule(graph, buffer_analysis.hierarchy)
        positions = {node: index for index, node in enumerate(order)}
        relation = graph.algebra.relation_bdd
        for edge in graph.edges():
            if (relation & edge.label).is_satisfiable() and edge.source != edge.target:
                assert positions[edge.source] < positions[edge.target]

    def test_schedule_covers_all_nodes(self, filter_analysis):
        graph = filter_analysis.reinforced_graph
        order = sequential_schedule(graph, filter_analysis.hierarchy)
        assert set(order) == set(graph.nodes())

    def test_serialization_error_on_feasible_cycle(self):
        builder = ProcessBuilder("loop", inputs=[], outputs=["x", "y"])
        builder.define("x", signal("y") + 0)
        builder.define("y", signal("x") + 0)
        analysis = ProcessAnalysis(normalize(builder.build()))
        with pytest.raises(SerializationError):
            sequential_schedule(analysis.reinforced_graph, analysis.hierarchy)

    def test_clock_nodes_come_before_their_value_nodes(self, buffer_analysis):
        order = sequential_schedule(buffer_analysis.reinforced_graph, buffer_analysis.hierarchy)
        positions = {node: index for index, node in enumerate(order)}
        for name in buffer_analysis.process.all_signals():
            assert positions[clock_node(name)] < positions[signal_node(name)]
