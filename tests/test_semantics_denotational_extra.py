"""Extra coverage for the bounded denotational semantics and behavior assembly."""

import pytest

from repro.lang.builder import ProcessBuilder, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.mocc.behaviors import flow_equivalent
from repro.semantics.denotational import behavior_from_run, enumerate_behaviors, run_to_completion
from repro.semantics.environment import ReactiveEnvironment
from repro.semantics.interpreter import SignalInterpreter


@pytest.fixture(scope="module")
def adder():
    builder = ProcessBuilder("adder", inputs=["a", "b"], outputs=["x"])
    builder.define("x", signal("a") + signal("b"))
    return normalize(builder.build())


@pytest.fixture(scope="module")
def gated_counter():
    builder = ProcessBuilder("gated", inputs=["c"], outputs=["n"])
    builder.constrain(tick("n"), when_true("c"))
    builder.define("n", signal("n").pre(0) + 1)
    return normalize(builder.build())


class TestBehaviorAssembly:
    def test_silent_instants_are_dropped_when_requested(self, gated_counter):
        environment = ReactiveEnvironment(["c"], [{"c": False}, {"c": True}, {"c": False}, {"c": True}])
        results = run_to_completion(gated_counter, environment)
        with_silent = behavior_from_run(results, ["n"])
        without_silent = behavior_from_run(results, ["n"], drop_silent=True)
        assert with_silent["n"].tags == (1, 3)
        assert without_silent["n"].tags == (0, 1)
        assert with_silent["n"].values == without_silent["n"].values == (1, 2)

    def test_empty_run_produces_empty_behavior(self):
        assert behavior_from_run([], ["x"]).is_empty()


class TestEnumeration:
    def test_synchronous_adder_has_single_interleaving(self, adder):
        process = enumerate_behaviors(adder, {"a": [1, 2], "b": [10, 20]}, signals=["a", "b", "x"])
        # a and b are forced synchronous by the functional equation, so the only
        # accepted interleaving presents them together
        assert len(process.flow_classes()) == 1
        behavior = process.behaviors()[0]
        assert behavior["x"].values == (11, 22)

    def test_enumeration_respects_clock_gates(self, gated_counter):
        process = enumerate_behaviors(gated_counter, {"c": [True, False, True]}, signals=["c", "n"])
        for behavior in process:
            true_count = sum(1 for value in behavior["c"].values if value)
            assert len(behavior["n"]) == true_count

    def test_behaviors_consume_all_flows_by_default(self, adder):
        process = enumerate_behaviors(adder, {"a": [1], "b": [2]}, signals=["a", "b", "x"])
        for behavior in process:
            assert behavior["a"].values == (1,)
            assert behavior["b"].values == (2,)

    def test_partial_exploration_when_not_required_to_exhaust(self, adder):
        process = enumerate_behaviors(
            adder,
            {"a": [1, 2, 3], "b": [4]},
            max_instants=1,
            require_exhausted=False,
            signals=["a", "b", "x"],
        )
        assert len(process) >= 1

    def test_flows_are_preserved_up_to_equivalence(self, gated_counter):
        dense = enumerate_behaviors(gated_counter, {"c": [True, True]}, signals=["c", "n"])
        assert all(
            flow_equivalent(behavior, behavior) for behavior in dense
        )
