"""Round trips for the persistence layer under :mod:`repro.service`.

Four surfaces, each JSON-safe end to end:

* ``Verdict`` / ``Diagnostic`` / ``Cost`` ``to_dict`` / ``from_dict``;
* ``BDDManager.dump`` / ``load`` (graph isomorphism and function equality);
* ``CompiledAbstraction.to_payload`` / ``from_payload`` — the reloaded
  engine must produce byte-identical ``reactions(state)`` on every
  reachable state of real library processes, and refuse payloads whose
  content digest does not match;
* the canonical printed form and its digest — stable under parse ∘ print,
  equation reordering, component reordering and local renaming (the
  property content-addressing relies on), pinned with hypothesis.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.results import Cost, Diagnostic, Verdict
from repro.bdd.bdd import BDDManager
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true
from repro.lang.normalize import normalize
from repro.lang.parser import parse_process
from repro.lang.printer import (
    canonical_digest,
    format_canonical,
    format_process,
    process_digest,
)
from repro.library import basic, ltta, producer_consumer
from repro.library.generators import chain_of_buffers, pipeline_network
from repro.mc.compiled import CompiledAbstraction
from repro.mc.onthefly import LazyReactionLTS, OnTheFlyChecker


# ---------------------------------------------------------------------------
# Verdict / Diagnostic / Cost
# ---------------------------------------------------------------------------

def test_verdict_round_trip_preserves_everything_but_the_report():
    verdict = Verdict(
        prop="weak-endochrony",
        subject="pipeline_4",
        holds=False,
        method="compiled",
        diagnostics=[
            Diagnostic("axiom-1", True, "fine"),
            Diagnostic("axiom-2", False, "clash", witness={"state": [1, 0]}),
        ],
        cost=Cost(seconds=0.25, states=12, transitions=30, state_bound=512, bdd_nodes=7),
        report=object(),  # deliberately unserializable
    )
    payload = json.loads(json.dumps(verdict.to_dict()))
    restored = Verdict.from_dict(payload)
    assert restored.prop == verdict.prop
    assert restored.subject == verdict.subject
    assert restored.holds == verdict.holds
    assert restored.method == verdict.method
    assert restored.cost == verdict.cost
    assert [d.name for d in restored.diagnostics] == ["axiom-1", "axiom-2"]
    assert restored.diagnostics[1].witness == {"state": [1, 0]}
    assert restored.report is None
    assert bool(restored) == bool(verdict)
    assert restored.failures()[0].name == "axiom-2"


def test_non_json_witness_becomes_its_repr():
    class Opaque:
        def __repr__(self):
            return "<opaque witness>"

    diagnostic = Diagnostic("check", False, witness=Opaque())
    payload = json.loads(json.dumps(diagnostic.to_dict()))
    assert payload["witness"] == "<opaque witness>"
    assert Diagnostic.from_dict(payload).witness == "<opaque witness>"


def test_live_verdict_is_json_safe():
    """A verdict straight from the pipeline survives json.dumps unchanged."""
    from repro.api.session import Design

    components, _ = chain_of_buffers(2)
    verdict = Design(name="chain", components=components).verify(
        "non-blocking", method="compiled"
    )
    payload = json.loads(json.dumps(verdict.to_dict()))
    assert payload["holds"] == verdict.holds
    assert Verdict.from_dict(payload).cost.seconds == pytest.approx(verdict.cost.seconds)


# ---------------------------------------------------------------------------
# BDDManager dump / load
# ---------------------------------------------------------------------------

def _assignments(names):
    if not names:
        yield {}
        return
    head, *tail = names
    for rest in _assignments(tail):
        yield {head: False, **rest}
        yield {head: True, **rest}


def test_bdd_dump_load_preserves_functions():
    manager = BDDManager(["a", "b", "c", "d"])
    a, b, c, d = (manager.var(n) for n in "abcd")
    roots = [(a & b) | (~c & d), a.iff(d) ^ (b & ~c), manager.true, manager.false]
    payload = json.loads(json.dumps(manager.dump(roots)))
    loaded_manager, loaded_roots = BDDManager.load(payload)
    assert loaded_manager.variables() == manager.variables()
    for original, loaded in zip(roots, loaded_roots):
        assert loaded.node_count() == original.node_count()
        for assignment in _assignments(["a", "b", "c", "d"]):
            assert loaded.evaluate(assignment) == original.evaluate(assignment)


def test_bdd_dump_serializes_only_reachable_nodes():
    manager = BDDManager(["a", "b", "c"])
    a, b, c = (manager.var(n) for n in "abc")
    _scratch = (a ^ b) | c  # dead after this line
    keep = a & b
    payload = manager.dump([keep])
    assert len(payload["nodes"]) == keep.node_count()


def test_bdd_load_rejects_corrupt_payloads():
    manager = BDDManager(["a", "b"])
    payload = manager.dump([manager.var("a") & manager.var("b")])
    broken = json.loads(json.dumps(payload))
    broken["nodes"][0][1] = 99  # child index pointing past its parent
    with pytest.raises(ValueError, match="corrupt"):
        BDDManager.load(broken)
    broken_root = json.loads(json.dumps(payload))
    broken_root["roots"] = [4096]
    with pytest.raises(ValueError, match="out of range"):
        BDDManager.load(broken_root)


# ---------------------------------------------------------------------------
# CompiledAbstraction payload round trips
# ---------------------------------------------------------------------------

def _reachable_reactions(abstraction, max_states=256):
    """state -> set of (reaction, successor), explored to a bound."""
    lazy = LazyReactionLTS(abstraction.process, abstraction=abstraction)
    checker = OnTheFlyChecker(lazy, max_states=max_states)
    table = {}
    for state in checker.iter_states():
        table[state] = set(lazy.successors(state))
    return table


@pytest.mark.parametrize(
    "name, build",
    [
        ("buffer", lambda: normalize(basic.buffer_process())),
        ("filter", lambda: normalize(basic.filter_process())),
        ("merge", lambda: normalize(basic.merge_process())),
        ("bus", lambda: normalize(ltta.bus_process(), ltta.registry())),
        ("pipeline_4", lambda: pipeline_network(4)[1]),
        ("buffer_chain_3", lambda: chain_of_buffers(3)[1]),
    ],
)
def test_compiled_payload_round_trip_preserves_reactions(name, build):
    process = build()
    abstraction = CompiledAbstraction(process)
    payload = json.loads(json.dumps(abstraction.to_payload()))
    loaded = CompiledAbstraction.from_payload(process, payload)
    assert loaded.initial_state() == abstraction.initial_state()
    original = _reachable_reactions(abstraction)
    reloaded = _reachable_reactions(loaded)
    assert original == reloaded
    assert loaded.bdd_nodes() == abstraction.bdd_nodes()


def test_compiled_payload_refuses_the_wrong_process():
    buffer = normalize(basic.buffer_process())
    merge = normalize(basic.merge_process())
    payload = CompiledAbstraction(buffer).to_payload()
    with pytest.raises(ValueError, match="digest"):
        CompiledAbstraction.from_payload(merge, payload)
    with pytest.raises(ValueError, match="format"):
        CompiledAbstraction.from_payload(buffer, {**payload, "format": 999})


def test_compiled_payload_round_trip_in_the_fallback_fragment():
    """Processes outside the fragment have no relation to persist — the
    store keeps the negative answer and the interpreter path still runs."""
    import tempfile

    from repro.api.session import Design
    from repro.mc.compiled import compilation_obstacles
    from repro.service.store import ArtifactStore

    builder = ProcessBuilder("cmp", inputs=["x"], outputs=["b"])
    builder.define("b", signal("x").lt(const(3)))
    process = normalize(builder.build())
    assert compilation_obstacles(process)

    store = ArtifactStore(tempfile.mkdtemp())
    store.store_compiled(process, None)
    found, abstraction = store.load_compiled(process)
    assert found and abstraction is None
    payload = store.get(process_digest(process), "compiled")
    assert payload["compilable"] is False
    assert payload["obstacles"]

    # a negative answer from an older payload format is a miss (the fragment
    # may have widened since), not a permanent pin to the interpreter
    stale = dict(payload, format=-1)
    store.put(process_digest(process), "compiled", stale)
    found_stale, _ = store.load_compiled(process)
    assert not found_stale
    store.store_compiled(process, None)  # restore for the session check below

    # a session over the store serves the negative answer without recompiling
    design = Design.from_process(process)
    design.context.artifact_cache = store
    assert design.context.compiled(process) is None
    verdict = design.verify("non-blocking", method="compiled")
    assert verdict.method == "explicit"  # honest labeling: interpreter ran
    fresh = Design.from_process(process).verify("non-blocking", method="explicit")
    assert verdict.holds == fresh.holds


# ---------------------------------------------------------------------------
# Canonical form and digests
# ---------------------------------------------------------------------------

LIBRARY_PROCESSES = {
    "filter": basic.filter_process,
    "merge": basic.merge_process,
    "buffer": basic.buffer_process,
    "buffer2": basic.buffer2_process,
    "producer": producer_consumer.producer_process,
    "writer": ltta.writer_process,
    "bus": ltta.bus_process,
    "reader": ltta.reader_process,
}


def _library_registry():
    registry = {}
    registry.update(producer_consumer.registry())
    registry.update(ltta.registry())
    return registry


@pytest.mark.parametrize("name", sorted(LIBRARY_PROCESSES))
def test_parse_print_is_digest_stable_on_the_library(name):
    registry = _library_registry()
    original = normalize(LIBRARY_PROCESSES[name](), registry)
    reparsed = normalize(
        parse_process(format_process(LIBRARY_PROCESSES[name]())), registry
    )
    assert format_canonical(reparsed) == format_canonical(original)
    assert process_digest(reparsed) == process_digest(original)


def test_digest_ignores_equation_and_component_order():
    first = ProcessBuilder("p", inputs=["a", "b"], outputs=["x", "y"])
    first.define("x", signal("a").and_(signal("b")))
    first.define("y", signal("a").or_(signal("b")))
    second = ProcessBuilder("p", inputs=["b", "a"], outputs=["y", "x"])
    second.define("y", signal("a").or_(signal("b")))
    second.define("x", signal("a").and_(signal("b")))
    assert process_digest(normalize(first.build())) == process_digest(
        normalize(second.build())
    )

    components, _ = chain_of_buffers(3)
    assert canonical_digest(components) == canonical_digest(list(reversed(components)))


def test_digest_distinguishes_different_semantics():
    left = ProcessBuilder("p", inputs=["a", "b"], outputs=["x"])
    left.define("x", signal("a").and_(signal("b")))
    right = ProcessBuilder("p", inputs=["a", "b"], outputs=["x"])
    right.define("x", signal("a").or_(signal("b")))
    assert process_digest(normalize(left.build())) != process_digest(
        normalize(right.build())
    )


def test_digest_stable_under_reorder_with_multiple_hidden_locals():
    """Equation order must not leak into the α-renaming of hidden locals."""
    one = ProcessBuilder("p", inputs=["a", "b"], outputs=["y"]).local("t1", "t2")
    one.define("t1", signal("a").when(signal("a")))
    one.define("t2", signal("b").when(signal("b")))
    one.define("y", signal("t1").default(signal("t2")))
    other = ProcessBuilder("p", inputs=["a", "b"], outputs=["y"]).local("t1", "t2")
    other.define("t2", signal("b").when(signal("b")))
    other.define("t1", signal("a").when(signal("a")))
    other.define("y", signal("t1").default(signal("t2")))
    assert format_canonical(normalize(one.build())) == format_canonical(
        normalize(other.build())
    )
    assert process_digest(normalize(one.build())) == process_digest(
        normalize(other.build())
    )


def test_compiled_payload_refuses_alpha_variants():
    """Same digest, different local spellings: the relation names concrete
    signals, so an α-variant must recompile instead of adopting it."""
    one = ProcessBuilder("p", inputs=["a"], outputs=["y"]).local("locu")
    one.define("locu", signal("a").when(signal("a")))
    one.define("y", signal("locu").default(signal("a")))
    other = ProcessBuilder("p", inputs=["a"], outputs=["y"]).local("locw")
    other.define("locw", signal("a").when(signal("a")))
    other.define("y", signal("locw").default(signal("a")))
    first, second = normalize(one.build()), normalize(other.build())
    assert process_digest(first) == process_digest(second)  # α-equivalent
    payload = CompiledAbstraction(first).to_payload()
    with pytest.raises(ValueError, match="variant"):
        CompiledAbstraction.from_payload(second, payload)

    # through the store: the mismatch is a miss, the variant recompiles
    import tempfile

    from repro.service.store import ArtifactStore

    store = ArtifactStore(tempfile.mkdtemp())
    store.store_compiled(first, CompiledAbstraction(first))
    found, loaded = store.load_compiled(second)
    assert not found and loaded is None
    found, loaded = store.load_compiled(first)
    assert found and loaded._signals == first.all_signals()


def test_bdd_load_rejects_unordered_levels_and_duplicates():
    manager = BDDManager(["a", "b"])
    payload = manager.dump([manager.var("a") & manager.var("b")])
    unordered = json.loads(json.dumps(payload))
    # give the parent the same level as its child: violates ordering
    levels = [node[0] for node in unordered["nodes"]]
    if len(unordered["nodes"]) >= 2:
        unordered["nodes"][-1][0] = max(levels)
        with pytest.raises(ValueError, match="precede"):
            BDDManager.load(unordered)
    duplicated = json.loads(json.dumps(payload))
    duplicated["nodes"].append(list(duplicated["nodes"][-1]))
    with pytest.raises(ValueError, match="duplicate|precede|corrupt"):
        BDDManager.load(duplicated)


def test_renamed_locals_cannot_collide_with_real_signals():
    """A process with an input literally named like a canonical local must
    not digest-collide with a self-referential variant."""
    aliased = ProcessBuilder("p", inputs=["x", "_l0"], outputs=["y"]).local("h")
    aliased.define("h", signal("x").when(signal("_l0")))
    aliased.define("y", signal("h").when(signal("x")))
    looped = ProcessBuilder("p", inputs=["x", "_l0"], outputs=["y"]).local("h")
    looped.define("h", signal("x").when(signal("h")))
    looped.define("y", signal("h").when(signal("x")))
    assert format_canonical(normalize(aliased.build())) != format_canonical(
        normalize(looped.build())
    )
    assert process_digest(normalize(aliased.build())) != process_digest(
        normalize(looped.build())
    )


def test_digest_stable_under_reorder_of_mutually_referencing_locals():
    """Locals that reference each other must be ranked by content, not by
    the order their equations happened to be listed in."""

    def build(reorder: bool):
        builder = ProcessBuilder("p", inputs=["x"], outputs=["y"]).local("a", "b")
        equations = [
            ("a", signal("x").when(signal("b"))),
            ("b", signal("x").when(signal("a"))),
        ]
        if reorder:
            equations.reverse()
        for target, expression in equations:
            builder.define(target, expression)
        builder.define("y", signal("a").when(signal("x")))
        return normalize(builder.build())

    assert format_canonical(build(False)) == format_canonical(build(True))
    assert process_digest(build(False)) == process_digest(build(True))


def test_canonical_form_renames_generated_locals():
    """The same computation built with different intermediate names prints
    to identical canonical bytes (generated locals are α-renamed)."""
    one = ProcessBuilder("p", inputs=["a", "b"], outputs=["y"]).local("u")
    one.define("u", signal("a").and_(signal("b")))
    one.define("y", signal("u").or_(signal("a")))
    other = ProcessBuilder("p", inputs=["a", "b"], outputs=["y"]).local("v")
    other.define("v", signal("a").and_(signal("b")))
    other.define("y", signal("v").or_(signal("a")))
    assert format_canonical(normalize(one.build())) == format_canonical(
        normalize(other.build())
    )


# -- hypothesis: random boolean processes stay digest-stable ---------------------

_VARIABLES = ("a", "b", "c")


@st.composite
def _boolean_expressions(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return signal(draw(st.sampled_from(_VARIABLES)))
    operator = draw(st.sampled_from(["and", "or", "xor", "not"]))
    left = draw(_boolean_expressions(depth=depth - 1))
    if operator == "not":
        return left.not_()
    right = draw(_boolean_expressions(depth=depth - 1))
    if operator == "and":
        return left.and_(right)
    if operator == "or":
        return left.or_(right)
    return left.ne(right)  # boolean '/=' is xor


@st.composite
def _random_processes(draw):
    builder = ProcessBuilder("rand", inputs=list(_VARIABLES), outputs=["y", "z"])
    builder.define("y", draw(_boolean_expressions()))
    builder.define("z", draw(_boolean_expressions()))
    if draw(st.booleans()):
        builder.constrain(tick("y"), when_true("a"))
    return builder.build()


@settings(max_examples=40, deadline=None)
@given(_random_processes())
def test_parse_print_is_digest_stable_on_random_processes(definition):
    original = normalize(definition)
    reparsed = normalize(parse_process(format_process(definition)))
    assert process_digest(reparsed) == process_digest(original)
