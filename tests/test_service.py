"""The serving layer: registry, artifact store, scheduler, socket protocol.

The acceptance-critical behaviors pinned here:

* 64 concurrent identical queries trigger **exactly one** underlying
  computation (the scheduler's ``computations`` instrumentation counter);
* a warm artifact-store start answers without recompiling: persisted
  verdicts short-circuit the pipeline entirely, persisted step relations
  short-circuit compilation for fresh queries;
* content addressing deduplicates designs across construction paths
  (source text, builder, printed-and-reparsed source);
* the Unix-socket JSON protocol round-trips register / verify / describe /
  stats / shutdown, errors included, across threads.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading

import pytest

from repro.api.session import Design
from repro.lang.printer import format_process
from repro.library.generators import chain_of_buffers, pipeline_network
from repro.service import (
    ArtifactStore,
    DesignRegistry,
    InlineBackend,
    ProcessPoolBackend,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ServiceUnavailable,
    TransportError,
    VerificationService,
)

FILTER_SOURCE = """
process filter (x) returns (y) {
  y := x when x;
}
"""


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_deduplicates_across_construction_paths():
    registry = DesignRegistry()
    first = registry.register(FILTER_SOURCE)
    # the same design via print ∘ parse: byte-different source, same content
    printed = format_process(Design.from_source(FILTER_SOURCE).context.registry["filter"])
    second = registry.register(printed)
    assert first == second
    assert len(registry) == 1
    assert registry.stats()["deduplicated"] == 1
    assert registry.get(first).name == "filter"
    with pytest.raises(KeyError):
        registry.get("0" * 64)


def test_registry_bounds_live_sessions_with_lru_eviction():
    registry = DesignRegistry(max_designs=2)
    digests = []
    for size in (2, 3, 4):
        _, composition = pipeline_network(size)
        digests.append(registry.register([composition], name=f"pipeline_{size}"))
    assert len(registry) == 2
    assert registry.stats()["evicted"] == 1
    with pytest.raises(KeyError):
        registry.get(digests[0])  # the oldest was evicted
    assert registry.get(digests[2]).name == "pipeline_4"
    # re-registering the evicted design rebuilds its session
    _, rebuilt = pipeline_network(2)
    assert registry.register([rebuilt], name="pipeline_2") == digests[0]
    assert registry.get(digests[0]).name == "pipeline_2"


def test_design_digest_is_stable_across_sessions():
    _, one = pipeline_network(4)
    _, two = pipeline_network(4)
    assert Design.from_process(one).digest() == Design.from_process(two).digest()
    _, other = pipeline_network(5)
    assert Design.from_process(one).digest() != Design.from_process(other).digest()


# ---------------------------------------------------------------------------
# the scheduler: coalescing, LRU, counters
# ---------------------------------------------------------------------------

def test_64_concurrent_identical_queries_compute_once():
    service = VerificationService()  # no store: nothing else can absorb the work
    _, composition = pipeline_network(6)
    digest = service.register([composition], name="pipeline_6")

    async def fan_out():
        return await asyncio.gather(
            *[
                service.verify(digest, "non-blocking", method="compiled")
                for _ in range(64)
            ]
        )

    results = asyncio.run(fan_out())
    assert len(results) == 64
    assert all(result == results[0] for result in results)
    assert results[0]["holds"] is True
    assert service.computations == 1, "coalescing must share one computation"
    assert service.coalesced == 63
    service.close()


def test_repeat_queries_hit_the_lru_cache():
    service = VerificationService()
    _, composition = pipeline_network(4)
    digest = service.register([composition])
    first = service.verify_blocking(digest, "non-blocking", method="compiled")
    second = service.verify_blocking(digest, "non-blocking", method="compiled")
    assert first == second
    assert service.computations == 1
    assert service.cache_hits == 1
    service.close()


def test_lru_cache_evicts_least_recently_used():
    service = VerificationService(cache_size=2)
    _, composition = pipeline_network(4)
    digest = service.register([composition])
    service.verify_blocking(digest, "non-blocking", method="compiled")
    service.verify_blocking(digest, "weak-endochrony", method="compiled")
    service.verify_blocking(digest, "non-blocking", method="explicit")  # evicts #1
    assert service.computations == 3
    service.verify_blocking(digest, "non-blocking", method="compiled")
    assert service.computations == 4, "evicted entry must be recomputed"
    service.close()


def test_callers_cannot_corrupt_the_cached_verdict():
    service = VerificationService()
    digest = service.register(FILTER_SOURCE)
    first = service.verify_blocking(digest, "non-blocking", method="compiled")
    first["holds"] = False
    first["diagnostics"].clear()
    second = service.verify_blocking(digest, "non-blocking", method="compiled")
    assert second["holds"] is True
    assert second["diagnostics"], "cache must hand out copies, not the live entry"
    assert service.computations == 1
    service.close()


def test_repeat_by_source_submissions_skip_reparsing():
    service = VerificationService()
    first = service.register(FILTER_SOURCE)
    design = service.registry.get(first)
    assert service.register(FILTER_SOURCE) == first
    assert service.registry.get(first) is design  # no new Design was built
    assert service.registry.stats()["deduplicated"] == 1
    service.close()


def test_unknown_digest_and_bad_property_raise():
    service = VerificationService()
    with pytest.raises(KeyError):
        service.verify_blocking("f" * 64, "non-blocking")
    digest = service.register(FILTER_SOURCE)
    with pytest.raises(Exception, match="unknown property"):
        service.verify_blocking(digest, "no-such-property")
    service.close()


def test_failed_queries_are_not_cached():
    service = VerificationService()
    digest = service.register(FILTER_SOURCE)
    with pytest.raises(Exception):
        # isochrony needs exactly two components: the backend raises
        service.verify_blocking(digest, "isochrony", method="explicit")
    assert service.computations == 1
    verdict = service.verify_blocking(digest, "non-blocking")
    assert verdict["holds"]
    service.close()


# ---------------------------------------------------------------------------
# the artifact store: warm starts
# ---------------------------------------------------------------------------

def test_warm_service_answers_from_persisted_verdicts(tmp_path):
    _, composition = pipeline_network(6)
    cold = VerificationService(store=ArtifactStore(tmp_path / "store"))
    digest = cold.register([composition], name="pipeline_6")
    cold_verdict = cold.verify_blocking(digest, "non-blocking", method="compiled")
    assert cold.computations == 1
    cold.close()

    _, rebuilt = pipeline_network(6)  # fresh objects: nothing shared in memory
    warm = VerificationService(store=ArtifactStore(tmp_path / "store"))
    warm_digest = warm.register([rebuilt], name="pipeline_6")
    assert warm_digest == digest
    warm_verdict = warm.verify_blocking(warm_digest, "non-blocking", method="compiled")
    assert warm.computations == 0, "a persisted verdict needs no computation"
    assert warm.verdict_store_hits == 1
    assert warm_verdict["holds"] == cold_verdict["holds"]
    assert warm_verdict["method"] == cold_verdict["method"]
    warm.close()


def test_warm_service_reloads_compiled_relations_for_new_queries(tmp_path):
    _, composition = pipeline_network(6)
    cold = VerificationService(store=ArtifactStore(tmp_path / "store"))
    digest = cold.register([composition], name="pipeline_6")
    cold.verify_blocking(digest, "non-blocking", method="compiled")
    cold.close()

    _, rebuilt = pipeline_network(6)
    warm = VerificationService(store=ArtifactStore(tmp_path / "store"))
    warm_digest = warm.register([rebuilt], name="pipeline_6")
    # a *different* query: the verdict misses, but the step relation loads
    verdict = warm.verify_blocking(
        warm_digest, "weak-endochrony", method="compiled"
    )
    assert verdict["method"] == "compiled"
    assert warm.computations == 1
    design = warm.registry.get(warm_digest)
    abstraction = design.context.compiled(design.composition)
    assert abstraction is not None
    # from_payload leaves no hierarchy behind — proof it was loaded, not compiled
    assert abstraction.hierarchy is None
    warm.close()


def test_store_survives_torn_objects(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put("ab" * 32, "analysis", {"ok": True})
    path = store.path("ab" * 32, "analysis")
    path.write_text("{ torn", encoding="utf-8")
    assert store.get("ab" * 32, "analysis") is None
    assert store.stats()["invalid"] == 1


def test_describe_persists_analysis_summaries(tmp_path):
    components, _ = chain_of_buffers(2)
    service = VerificationService(store=ArtifactStore(tmp_path / "store"))
    digest = service.register(components, name="chain")
    summary = service.describe_blocking(digest)
    assert summary["design"] == "chain"
    assert len(summary["components"]) == 2
    assert summary["composition"]["process"] == "chain"
    service.close()

    again = VerificationService(store=ArtifactStore(tmp_path / "store"))
    rebuilt, _ = chain_of_buffers(2)
    warm_digest = again.register(rebuilt, name="chain")
    assert again.describe_blocking(warm_digest) == summary  # served from disk
    again.close()


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------

@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="process pool needs more than one core"
)
def test_process_pool_backend_agrees_with_inline(tmp_path):
    _, composition = pipeline_network(4)
    inline = VerificationService()
    inline_verdict = inline.verify_blocking(
        inline.register([composition]), "non-blocking", method="compiled"
    )
    inline.close()

    _, rebuilt = pipeline_network(4)
    pooled = VerificationService(
        store=ArtifactStore(tmp_path / "store"),
        backend=ProcessPoolBackend(workers=2, store_root=str(tmp_path / "store")),
    )
    digest = pooled.register([rebuilt])
    pooled_verdict = pooled.verify_blocking(digest, "non-blocking", method="compiled")
    assert pooled_verdict["holds"] == inline_verdict["holds"]
    assert pooled_verdict["method"] == inline_verdict["method"]
    # the worker populated the shared store with the compiled relation
    assert pooled.store.stats()["objects"] >= 1
    pooled.close()


def test_inline_backend_bounds_its_pool():
    backend = InlineBackend(workers=2)
    assert backend.describe() == {"backend": "inline", "workers": 2}
    backend.shutdown()


# ---------------------------------------------------------------------------
# the socket protocol
# ---------------------------------------------------------------------------

@pytest.fixture()
def running_server(tmp_path):
    socket_path = tmp_path / "service.sock"
    service = VerificationService(store=ArtifactStore(tmp_path / "store"))
    server = ServiceServer(service, socket_path)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever(ready)), daemon=True
    )
    thread.start()
    assert ready.wait(10), "server did not come up"
    client = ServiceClient(socket_path)
    yield client, service
    try:
        client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(10)
    assert not thread.is_alive()


def test_socket_protocol_round_trip(running_server):
    client, service = running_server
    assert client.ping()
    digest = client.register(FILTER_SOURCE)
    assert digest == service.registry.digest_of(FILTER_SOURCE)
    verdict = client.verify(digest=digest, prop="non-blocking", method="compiled")
    assert verdict["holds"] is True
    assert verdict["digest"] == digest
    # by-source verification coalesces onto the same design
    verdict_by_source = client.verify(source=FILTER_SOURCE, prop="non-blocking", method="compiled")
    assert verdict_by_source["holds"] is True
    description = client.describe(digest)
    assert description["design"] == "filter"
    stats = client.stats()
    assert stats["registry"]["designs"] == 1
    assert stats["server"]["requests"] >= 5
    assert json.dumps(stats)  # the whole stats payload is JSON-safe


def test_socket_protocol_reports_errors_without_dying(running_server):
    client, _service = running_server
    with pytest.raises(ServiceError, match="unknown operation"):
        client.request({"op": "frobnicate"})
    with pytest.raises(ServiceError, match="unknown property"):
        client.verify(source=FILTER_SOURCE, prop="no-such-property")
    assert client.ping()  # still alive


def test_socket_accepts_large_sources_and_rejects_oversized_lines(running_server):
    client, _service = running_server
    # well past asyncio's 64 KiB default line limit, below the server's own
    padded = FILTER_SOURCE + " " * 200_000
    digest = client.register(padded)
    assert len(digest) == 64
    # beyond the server's limit: an explicit refusal (the server may close
    # the connection mid-send, surfacing as OSError on some platforms),
    # never a hung or silently-dropped request — and the server survives
    from repro.service.server import ServiceServer

    with pytest.raises((ServiceError, OSError)):
        client.request({"op": "ping", "padding": "x" * (ServiceServer.LINE_LIMIT + 1024)})
    assert client.ping()


def test_client_retries_then_raises_service_unavailable(tmp_path):
    client = ServiceClient(tmp_path / "absent.sock", retries=2, backoff=0.001)
    with pytest.raises(ServiceUnavailable, match="3 attempt"):
        client.ping()
    assert client.retried == 2
    # the typed error names the operation and the socket path
    with pytest.raises(ServiceUnavailable, match="'ping'.*absent.sock"):
        ServiceClient(tmp_path / "absent.sock", retries=0).ping()


def test_client_wraps_garbled_responses_in_typed_errors(tmp_path):
    socket_path = tmp_path / "garbler.sock"
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(str(socket_path))
    listener.listen(1)

    def garble():
        connection, _ = listener.accept()
        connection.recv(65536)
        connection.sendall(b"} not json {\n")
        connection.close()

    thread = threading.Thread(target=garble, daemon=True)
    thread.start()
    try:
        with pytest.raises(TransportError, match="'ping'.*garbler.sock"):
            ServiceClient(socket_path, retries=0).ping()
    finally:
        thread.join(5)
        listener.close()


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------

def test_cli_exits_1_when_the_server_is_absent(tmp_path, capsys):
    from repro.service.__main__ import main

    missing = tmp_path / "nobody-home.sock"
    assert main(["stats", "--socket", str(missing), "--retries", "0"]) == 1
    captured = capsys.readouterr()
    assert "is the server running?" in captured.err
    assert str(missing) in captured.err
    assert captured.out == ""  # the hint goes to stderr, not the JSON stream


def test_cli_digest_is_offline(tmp_path, capsys):
    from repro.service.__main__ import main

    source = tmp_path / "filter.sig"
    source.write_text(FILTER_SOURCE, encoding="utf-8")
    assert main(["digest", "--source", str(source)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["design"] == "filter"
    assert len(payload["digest"]) == 64
